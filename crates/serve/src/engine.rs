//! The event-driven serving loop.
//!
//! [`serve`] drains a [`Workload`] tick by tick.  A tick is one instant of
//! the arrival schedule at which at least one session has a packet due —
//! empty instants are skipped, so the number of loop iterations is
//! bounded by the number of distinct arrival instants (each iteration
//! still scans every session for a cheap due/pending check; a due-tick
//! priority queue is the natural upgrade once idle sessions dominate).
//! Each tick runs three phases:
//!
//! 1. **Prepare** (parallel over shards): every due session regenerates
//!    its packet's waveform, fits the preamble LS estimate and surfaces
//!    its NN inference plan — the per-packet work that dominates CPU cost
//!    besides the forward pass itself.
//! 2. **Plan + batch** (sequential): the planner groups all plans by model
//!    key and issues one `predict_batch` per distinct model
//!    (`crate::planner`), scattering predictions back.
//! 3. **Complete** (parallel over shards): every due session decodes with
//!    the injected prediction, scores the packet and observes it.
//!
//! # Determinism
//!
//! Every number the loop produces is independent of the shard count *and*
//! of the arrival schedule: sessions share no mutable state, each phase
//! visits each session exactly once, batch composition only affects how
//! predictions are grouped — never their values (`predict_batch` is
//! bit-identical to per-image prediction) — and traces are kept per
//! session.  The serve golden test pins this down against the offline
//! streaming pipeline at shard counts 1, 2 and 8.
//!
//! [`ServeEngine`] exposes the same loop in stepping form (`run_ticks`),
//! which is what the cross-process coordinator in `vvd-net` drives between
//! tick barriers — stepping granularity is pure scheduling and invisible
//! in every trace.

use crate::checkpoint::{CheckpointError, CheckpointStore, EngineCheckpoint};
use crate::loadgen::Workload;
use crate::pipeline::{self, PrefetchBuffer};
use crate::planner::{run_batched_inference, BatchCounters};
use crate::report::{PhaseTimings, ServeReport};
use crate::store::SessionStore;
use crate::timing::Stopwatch;

/// Execution options of a serve run.
#[derive(Debug, Clone, Copy)]
pub struct ServeOptions {
    /// Number of shards (worker threads) the session store fans out over.
    /// The default follows `vvd_dsp::worker_budget()` (the `VVD_WORKERS`
    /// override included); any value produces bit-identical results.
    pub shards: usize,
    /// Whether the engine overlaps the *next* tick's DSP synthesis with
    /// the current tick's batched inference (the double-buffered tick
    /// pipeline, see `crate::pipeline`).  The default follows
    /// `vvd_dsp::pipeline_enabled()` (the `VVD_PIPELINE` env knob, on
    /// unless explicitly disabled); pipelining is pure scheduling, so
    /// either value produces bit-identical results.
    pub pipeline: bool,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            shards: vvd_dsp::worker_budget(),
            pipeline: vvd_dsp::pipeline_enabled(),
        }
    }
}

/// Runs the workload to completion and reports what happened.
pub fn serve(workload: Workload, options: &ServeOptions) -> ServeReport {
    let mut engine = ServeEngine::new(workload, options);
    while engine.step_tick() {}
    engine.finish()
}

/// A stepping form of the serve loop: the same three-phase tick engine as
/// [`serve`], but advanced explicitly, a bounded number of ticks at a
/// time.
///
/// This is what the cross-process serving layer (`vvd-net`) drives: a
/// worker process holds one `ServeEngine` over its assigned session
/// subset and advances it between coordinator tick barriers.  Stepping
/// granularity is pure scheduling — every trace the engine produces is
/// bit-identical whether the workload ran through one [`serve`] call or
/// through any sequence of [`run_ticks`](Self::run_ticks) calls.
pub struct ServeEngine {
    store: SessionStore,
    cache: vvd_estimation::ModelCache,
    shards: usize,
    pipeline: bool,
    ticks: u64,
    batches: BatchCounters,
    started: Stopwatch,
    phases: PhaseTimings,
    /// Products the pipeline synthesized during the previous tick, waiting
    /// to be stashed into their sessions when their tick starts.  Never
    /// checkpointed: the buffer is transient and recomputable, so a resume
    /// simply starts without one.
    prefetch: Option<PrefetchBuffer>,
    policy: Option<CheckpointPolicy>,
}

/// The engine's periodic checkpoint policy: write a frame to the store
/// every `every_ticks` processed ticks.
struct CheckpointPolicy {
    store: Box<dyn CheckpointStore>,
    every_ticks: u64,
    last_error: Option<CheckpointError>,
}

/// Snapshots a session store at a tick boundary (free function so the
/// engine can snapshot while holding `&mut self.policy`).
fn snapshot(
    store: &SessionStore,
    ticks: u64,
    batches: BatchCounters,
) -> Result<EngineCheckpoint, CheckpointError> {
    let mut sessions = Vec::with_capacity(store.sessions().len());
    for session in store.sessions() {
        sessions.push(session.checkpoint()?);
    }
    Ok(EngineCheckpoint {
        ticks,
        batches,
        sessions,
    })
}

impl ServeEngine {
    /// Wraps a built workload in a stepping engine.
    pub fn new(workload: Workload, options: &ServeOptions) -> Self {
        let Workload { store, cache, .. } = workload;
        ServeEngine {
            store,
            cache,
            shards: options.shards.max(1),
            pipeline: options.pipeline,
            ticks: 0,
            batches: BatchCounters::default(),
            started: Stopwatch::start(),
            phases: PhaseTimings::default(),
            prefetch: None,
            policy: None,
        }
    }

    /// Enables periodic checkpointing: after every `every_ticks` processed
    /// ticks (and the value is clamped to ≥ 1) the engine writes a frame
    /// to `store`.  Checkpoint *write* failures never interrupt serving —
    /// the durability layer is advisory — but the last error is kept and
    /// visible through [`checkpoint_error`](Self::checkpoint_error).
    pub fn with_checkpoints(mut self, store: Box<dyn CheckpointStore>, every_ticks: u64) -> Self {
        self.policy = Some(CheckpointPolicy {
            store,
            every_ticks: every_ticks.max(1),
            last_error: None,
        });
        self
    }

    /// Snapshots the engine at the current tick boundary.
    ///
    /// # Errors
    /// [`CheckpointError::MidTick`] when any session holds a pending
    /// packet (cannot happen between [`step_tick`](Self::step_tick)
    /// calls — ticks are atomic).
    pub fn checkpoint(&self) -> Result<EngineCheckpoint, CheckpointError> {
        snapshot(&self.store, self.ticks, self.batches)
    }

    /// Rebuilds an engine from a freshly built workload and a checkpoint:
    /// the fit products come from the workload (re-derived
    /// deterministically or rehydrated through the shared model cache),
    /// the streaming position from the checkpoint.  The resumed engine's
    /// remaining run is bit-identical to the uninterrupted one.
    ///
    /// # Errors
    /// [`CheckpointError::SessionCount`] / `SessionMismatch` / `State`
    /// when the checkpoint does not belong to this workload.
    pub fn resume(
        workload: Workload,
        options: &ServeOptions,
        checkpoint: &EngineCheckpoint,
    ) -> Result<Self, CheckpointError> {
        let mut engine = ServeEngine::new(workload, options);
        if engine.store.len() != checkpoint.sessions.len() {
            return Err(CheckpointError::SessionCount {
                expected: checkpoint.sessions.len(),
                found: engine.store.len(),
            });
        }
        for (session, ckpt) in engine
            .store
            .sessions_mut()
            .iter_mut()
            .zip(&checkpoint.sessions)
        {
            session.restore(ckpt)?;
        }
        engine.ticks = checkpoint.ticks;
        engine.batches = checkpoint.batches;
        Ok(engine)
    }

    /// The last checkpoint-write failure, when periodic checkpointing is
    /// on and a write failed.  Serving itself is never interrupted by
    /// durability errors.
    pub fn checkpoint_error(&self) -> Option<&CheckpointError> {
        self.policy.as_ref().and_then(|p| p.last_error.as_ref())
    }

    /// `true` once every session has streamed all of its packets.
    pub fn finished(&self) -> bool {
        self.store.next_due_tick().is_none()
    }

    /// Ticks processed so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Runs one tick (prepare / batch-infer / complete over every due
    /// session).  Returns `false` — without ticking — once the workload is
    /// drained.
    ///
    /// With the pipeline on, the next tick's DSP synthesis runs on scope
    /// threads while this tick's inference and commit phases execute; the
    /// products rendezvous at the end of the tick and are consumed — in
    /// tick order — by the next prepare phase.  Pure scheduling: every
    /// result bit is identical with the pipeline on or off.
    pub fn step_tick(&mut self) -> bool {
        let Some(tick) = self.store.next_due_tick() else {
            return false;
        };

        // Stash the previous tick's prefetched products (cheap moves; a
        // buffer planned for a different tick — impossible in a steady run,
        // conceivable only across exotic restarts — is simply dropped and
        // the products recomputed inline).
        if let Some(buffer) = self.prefetch.take() {
            if buffer.tick == tick {
                let sessions = self.store.sessions_mut();
                for (idx, product) in buffer.items {
                    sessions[idx].stash_synthesized(product);
                }
            }
        }

        // Phase 1: prepare every due session's packet (sharded),
        // consuming prefetched products where available.
        let sw = Stopwatch::start();
        self.store.for_each_sharded(self.shards, |session| {
            if session.due(tick) {
                session.prepare(tick);
            }
        });
        self.phases.dsp += sw.elapsed();

        // Mid-tick, after prepare: every due session is pending, so the
        // next tick and its due set are fully determined — plan its
        // synthesis now, before any estimator state mutates.
        let planned = if self.pipeline {
            pipeline::plan_jobs(&self.store)
        } else {
            None
        };

        // Phases 2 + 3, with the next tick's synthesis overlapped on
        // scope threads.  Jobs are plain data (Arc'd campaigns + indices),
        // so the synth threads never touch a session while inference and
        // commit mutate them.
        let shards = self.shards;
        let store = &mut self.store;
        let batches = &mut self.batches;
        let phases = &mut self.phases;
        self.prefetch = std::thread::scope(|scope| {
            let synth = planned.map(|(next_tick, mut jobs)| {
                let threads = shards.min(jobs.len()).max(1);
                let chunk_size = jobs.len().div_ceil(threads);
                let mut handles = Vec::with_capacity(threads);
                while !jobs.is_empty() {
                    let rest = jobs.split_off(chunk_size.min(jobs.len()));
                    let chunk = std::mem::replace(&mut jobs, rest);
                    handles.push(scope.spawn(move || pipeline::run_jobs(chunk)));
                }
                (next_tick, handles)
            });

            // Phase 2: one batched forward pass per distinct model.
            let sw = Stopwatch::start();
            batches.absorb(run_batched_inference(store.sessions_mut()));
            let infer = sw.elapsed();
            phases.infer += infer;

            // Phase 3: decode, score, observe (sharded).
            let sw = Stopwatch::start();
            store.for_each_sharded(shards, |session| {
                if session.has_pending() {
                    session.complete();
                }
            });
            let commit = sw.elapsed();
            phases.dsp += commit;

            // Rendezvous: join the synth threads and buffer their
            // products for the next tick.
            synth.map(|(next_tick, handles)| {
                let mut items = Vec::new();
                let mut busy = std::time::Duration::ZERO;
                for handle in handles {
                    let (chunk_items, chunk_busy) =
                        handle.join().expect("pipeline synth worker panicked");
                    items.extend(chunk_items);
                    busy = busy.max(chunk_busy);
                }
                let window = infer + commit;
                phases.window += window;
                phases.overlap += busy.min(window);
                PrefetchBuffer {
                    tick: next_tick,
                    items,
                }
            })
        });

        self.ticks += 1;

        // Periodic checkpointing, at the just-completed tick boundary.
        let due = self
            .policy
            .as_ref()
            .is_some_and(|p| self.ticks.is_multiple_of(p.every_ticks));
        if due {
            let snap = snapshot(&self.store, self.ticks, self.batches);
            let policy = self.policy.as_mut().expect("policy presence checked above");
            if let Err(e) = snap.and_then(|c| policy.store.save(&c)) {
                policy.last_error = Some(e);
            }
        }

        true
    }

    /// Runs up to `max_ticks` ticks, returning the number actually
    /// processed (less than `max_ticks` only when the workload drained).
    pub fn run_ticks(&mut self, max_ticks: u64) -> u64 {
        let mut processed = 0;
        while processed < max_ticks && self.step_tick() {
            processed += 1;
        }
        processed
    }

    /// Consumes the engine, assembling the final report.
    pub fn finish(self) -> ServeReport {
        let wall = self.started.elapsed();
        let sessions = self.store.into_sessions();
        let meta: Vec<(usize, String, String, usize)> = sessions
            .iter()
            .map(|s| {
                (
                    s.id(),
                    s.scenario().to_string(),
                    s.label().to_string(),
                    s.total_packets(),
                )
            })
            .collect();
        let traces = sessions
            .into_iter()
            .map(|s| s.into_trace())
            .collect::<Vec<_>>();

        let mut report = ServeReport::assemble(
            meta,
            traces,
            self.ticks,
            self.batches,
            self.cache.stats(),
            wall,
        )
        .expect("engine sessions are unique and id-ordered by construction");
        report.phases = self.phases;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loadgen::LoadGenerator;
    use crate::session::SessionSpec;
    use vvd_testbed::EvalConfig;

    fn tiny_config() -> EvalConfig {
        let mut cfg = EvalConfig::smoke();
        cfg.n_sets = 3;
        cfg.packets_per_set = 12;
        cfg.kalman_warmup_packets = 2;
        cfg
    }

    fn cheap_specs() -> Vec<SessionSpec> {
        vec![
            SessionSpec::new("paper", "ground-truth"),
            SessionSpec::new("paper", "previous:100ms").every(2),
            SessionSpec::new("paper", "standard").every(3).offset(4),
            SessionSpec::new("rayleigh:doppler=10", "preamble:genie")
                .every(2)
                .offset(1),
        ]
    }

    #[test]
    fn stepping_engine_matches_one_shot_serve_at_any_granularity() {
        let cfg = tiny_config();
        let gen = LoadGenerator::new(cfg);
        let reference = serve(
            gen.build(&cheap_specs()).unwrap(),
            &ServeOptions {
                shards: 1,
                ..ServeOptions::default()
            },
        );
        for granularity in [1u64, 3, 7, 1000] {
            let workload = gen.build(&cheap_specs()).unwrap();
            let mut engine = ServeEngine::new(
                workload,
                &ServeOptions {
                    shards: 2,
                    ..ServeOptions::default()
                },
            );
            assert!(!engine.finished());
            while !engine.finished() {
                let processed = engine.run_ticks(granularity);
                assert!(processed <= granularity);
            }
            assert_eq!(engine.run_ticks(5), 0, "a drained engine must not tick");
            let report = engine.finish();
            assert_eq!(report.digest(), reference.digest());
            assert_eq!(report.ticks, reference.ticks);
            assert_eq!(report.packets_streamed, reference.packets_streamed);
        }
    }

    #[test]
    fn serve_drains_every_session_and_reports_consistently() {
        let cfg = tiny_config();
        let workload = LoadGenerator::new(cfg).build(&cheap_specs()).unwrap();
        let report = serve(
            workload,
            &ServeOptions {
                shards: 2,
                ..ServeOptions::default()
            },
        );

        assert_eq!(report.sessions.len(), 4);
        let per_session = cfg.packets_per_set;
        for s in &report.sessions {
            assert_eq!(s.packets_streamed, per_session);
            assert!((0.0..=1.0).contains(&s.per));
        }
        assert_eq!(report.packets_streamed, 4 * per_session as u64);
        // Only non-empty ticks are processed: at least one tick per
        // arrival of the slowest session, at most the full schedule span
        // of the slowest session (every 3 ticks from offset 4).
        assert!(report.ticks >= per_session as u64);
        assert!(report.ticks <= 4 + 3 * (per_session as u64 - 1) + 1);
        assert!(report.packets_per_tick() > 0.0);
        // No VVD estimator in the mix: the planner never ran.
        assert_eq!(report.batches.batch_calls, 0);
        assert_eq!(report.batch_occupancy(), 0.0);
    }

    #[test]
    fn resume_from_checkpoint_matches_uninterrupted_run() {
        let cfg = tiny_config();
        let gen = LoadGenerator::new(cfg);
        let reference = serve(
            gen.build(&cheap_specs()).unwrap(),
            &ServeOptions {
                shards: 1,
                ..ServeOptions::default()
            },
        );

        // Interrupt after 5 ticks, snapshot, resume in a fresh engine.
        let mut first = ServeEngine::new(
            gen.build(&cheap_specs()).unwrap(),
            &ServeOptions {
                shards: 2,
                ..ServeOptions::default()
            },
        );
        assert_eq!(first.run_ticks(5), 5);
        let checkpoint = first.checkpoint().unwrap();
        drop(first);

        let mut resumed = ServeEngine::resume(
            gen.build(&cheap_specs()).unwrap(),
            &ServeOptions {
                shards: 3,
                ..ServeOptions::default()
            },
            &checkpoint,
        )
        .unwrap();
        assert_eq!(resumed.ticks(), 5);
        while resumed.step_tick() {}
        let report = resumed.finish();
        assert_eq!(report.digest(), reference.digest());
        assert_eq!(report.ticks, reference.ticks);
    }

    #[test]
    fn periodic_checkpoint_policy_writes_resumable_frames() {
        use crate::checkpoint::{EngineCheckpoint, MemoryCheckpointStore};

        let cfg = tiny_config();
        let gen = LoadGenerator::new(cfg);
        let reference = serve(
            gen.build(&cheap_specs()).unwrap(),
            &ServeOptions {
                shards: 1,
                ..ServeOptions::default()
            },
        );

        let mut engine = ServeEngine::new(
            gen.build(&cheap_specs()).unwrap(),
            &ServeOptions {
                shards: 2,
                ..ServeOptions::default()
            },
        )
        .with_checkpoints(Box::new(MemoryCheckpointStore::new()), 3);
        assert_eq!(engine.run_ticks(7), 7);
        assert!(engine.checkpoint_error().is_none());

        // Reach inside: the policy wrote frames at ticks 3 and 6, and the
        // latest resumes to the same final digest.
        let store = engine
            .policy
            .take()
            .expect("checkpointing was enabled")
            .store;
        let latest = store.load_latest().unwrap().expect("frames were written");
        assert_eq!(latest.ticks, 6);
        // Frames survive a byte-level round trip (the wire is what crosses
        // process boundaries).
        let latest = EngineCheckpoint::from_frame(&latest.to_frame()).unwrap();

        let mut resumed = ServeEngine::resume(
            gen.build(&cheap_specs()).unwrap(),
            &ServeOptions {
                shards: 1,
                ..ServeOptions::default()
            },
            &latest,
        )
        .unwrap();
        while resumed.step_tick() {}
        assert_eq!(resumed.finish().digest(), reference.digest());
    }

    #[test]
    fn resume_rejects_a_foreign_checkpoint() {
        use crate::checkpoint::CheckpointError;

        let cfg = tiny_config();
        let gen = LoadGenerator::new(cfg);
        let mut engine = ServeEngine::new(
            gen.build(&cheap_specs()).unwrap(),
            &ServeOptions {
                shards: 1,
                ..ServeOptions::default()
            },
        );
        engine.run_ticks(2);
        let checkpoint = engine.checkpoint().unwrap();

        // Wrong session count.
        let fewer: Vec<SessionSpec> = cheap_specs().into_iter().take(2).collect();
        assert!(matches!(
            ServeEngine::resume(
                gen.build(&fewer).unwrap(),
                &ServeOptions {
                    shards: 1,
                    ..ServeOptions::default()
                },
                &checkpoint
            ),
            Err(CheckpointError::SessionCount { .. })
        ));

        // Same count, different workload shape.
        let swapped: Vec<SessionSpec> = cheap_specs().into_iter().rev().collect();
        assert!(matches!(
            ServeEngine::resume(
                gen.build(&swapped).unwrap(),
                &ServeOptions {
                    shards: 1,
                    ..ServeOptions::default()
                },
                &checkpoint
            ),
            Err(CheckpointError::SessionMismatch { .. })
        ));
    }

    #[test]
    fn pipeline_on_and_off_produce_identical_digests() {
        let cfg = tiny_config();
        let gen = LoadGenerator::new(cfg);
        let off = serve(
            gen.build(&cheap_specs()).unwrap(),
            &ServeOptions {
                shards: 2,
                pipeline: false,
            },
        );
        assert_eq!(off.phases.window, std::time::Duration::ZERO);
        assert_eq!(off.phases.overlap_pct(), 0.0);
        let on = serve(
            gen.build(&cheap_specs()).unwrap(),
            &ServeOptions {
                shards: 2,
                pipeline: true,
            },
        );
        assert_eq!(on.digest(), off.digest());
        assert_eq!(on.ticks, off.ticks);
        // The pipelined run actually prefetched: scored packets exist on
        // every tick after the first, so overlap windows accumulated.
        assert!(on.phases.window > std::time::Duration::ZERO);
        assert!(on.phases.dsp > std::time::Duration::ZERO);
        assert!((0.0..=100.0).contains(&on.phases.overlap_pct()));
    }

    #[test]
    fn shard_count_and_arrival_schedule_do_not_change_the_digest() {
        let cfg = tiny_config();
        let gen = LoadGenerator::new(cfg);
        let base = serve(
            gen.build(&cheap_specs()).unwrap(),
            &ServeOptions {
                shards: 1,
                ..ServeOptions::default()
            },
        );
        // Different shard count.
        let sharded = serve(
            gen.build(&cheap_specs()).unwrap(),
            &ServeOptions {
                shards: 3,
                ..ServeOptions::default()
            },
        );
        assert_eq!(base.digest(), sharded.digest());
        // Different arrival schedule (all sessions burst at tick 0, one
        // packet per tick): same outcomes, different timing.
        let burst: Vec<SessionSpec> = cheap_specs()
            .into_iter()
            .map(|s| s.every(1).offset(0))
            .collect();
        let bursty = serve(
            gen.build(&burst).unwrap(),
            &ServeOptions {
                shards: 2,
                ..ServeOptions::default()
            },
        );
        assert_eq!(base.digest(), bursty.digest());
        assert!(bursty.ticks < base.ticks);
    }
}
