//! Serve-run reporting: per-session quality, throughput, batching and
//! cache accounting, plus a stable outcome digest.

use crate::planner::BatchCounters;
use std::error::Error;
use std::fmt;
use std::time::Duration;
use vvd_estimation::metrics::{chip_error_rate, mean_squared_error, packet_error_rate};
use vvd_estimation::ModelCacheStats;
use vvd_testbed::stream::EstimatorTrace;

/// Quality summary of one served session.
#[derive(Debug, Clone)]
pub struct SessionReport {
    /// Workload-wide session identifier.
    pub session_id: usize,
    /// Scenario spec of the session's environment.
    pub scenario: String,
    /// Label the session's estimator reports under.
    pub estimator: String,
    /// Packets streamed through the estimator (warm-up included).
    pub packets_streamed: usize,
    /// Packets actually decoded and scored.
    pub packets_scored: usize,
    /// Packet error rate over the scored packets.
    pub per: f64,
    /// Chip error rate over the scored packets.
    pub cer: f64,
    /// Eq.-9 MSE (None for estimators that produce no channel estimate).
    pub mse: Option<f64>,
}

/// Per-phase wall-clock accounting of the tick engine, accumulated over a
/// whole run.
///
/// Pure observability: none of these numbers feed the
/// [`digest`](ServeReport::digest), and they legitimately vary run to run.
/// `dsp` covers the DSP-bound phases (packet prepare + decode/commit),
/// `infer` the batched NN forward passes; when the tick pipeline is on,
/// `overlap` is how much next-tick synthesis ran *concurrently* with the
/// infer/commit window (`window`), i.e. DSP work the pipeline hid.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimings {
    /// Wall time spent in the DSP-bound phases (prepare + complete).
    pub dsp: Duration,
    /// Wall time spent in the batched-inference phase.
    pub infer: Duration,
    /// Next-tick synthesis time that overlapped the infer/commit window
    /// (zero when the pipeline is off).
    pub overlap: Duration,
    /// Total infer/commit window during which synthesis could overlap
    /// (zero when the pipeline is off or nothing was prefetchable).
    pub window: Duration,
}

impl PhaseTimings {
    /// DSP-phase wall time in milliseconds.
    pub fn dsp_ms(&self) -> f64 {
        self.dsp.as_secs_f64() * 1e3
    }

    /// Inference-phase wall time in milliseconds.
    pub fn infer_ms(&self) -> f64 {
        self.infer.as_secs_f64() * 1e3
    }

    /// Share of the infer/commit window that next-tick synthesis kept busy
    /// concurrently, in percent (0 when the pipeline never overlapped).
    pub fn overlap_pct(&self) -> f64 {
        if self.window.is_zero() {
            0.0
        } else {
            100.0 * self.overlap.as_secs_f64() / self.window.as_secs_f64()
        }
    }
}

/// Everything a serve run reports.
///
/// The per-session traces are carried verbatim (they are what the golden
/// tests compare against the offline streaming pipeline); the summary
/// numbers are derived from them.
#[derive(Debug)]
pub struct ServeReport {
    /// Per-session summaries, in session-id order.
    pub sessions: Vec<SessionReport>,
    /// Per-session traces, in session-id order (bit-comparable to
    /// [`stream_estimators`](vvd_testbed::stream::stream_estimators)
    /// traces).
    pub traces: Vec<EstimatorTrace>,
    /// Number of ticks the engine actually processed (ticks in which at
    /// least one packet was due).
    pub ticks: u64,
    /// Total packets streamed across all sessions.
    pub packets_streamed: u64,
    /// Total packets decoded and scored across all sessions.
    pub packets_served: u64,
    /// Cross-session batching counters of the inference planner.
    pub batches: BatchCounters,
    /// Counters of the model cache shared across the workload's trainings.
    pub model_cache: ModelCacheStats,
    /// Wall-clock duration of the serve loop (excludes workload build).
    pub wall: Duration,
    /// Per-phase wall-clock breakdown of the tick engine (zeroed for
    /// reports reassembled from remote workers — per-phase accounting is
    /// per-engine observability, not part of the merged outcome).
    pub phases: PhaseTimings,
}

/// What can make a set of per-session results unassemblable into one
/// [`ServeReport`].
///
/// Before this existed, `assemble` blindly zipped metadata with traces,
/// so a duplicated or dropped session report (a real hazard once reports
/// are collected from remote workers) silently mis-attributed every
/// session after the defect.  Now each defect is a typed error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReportAssemblyError {
    /// `meta` and `traces` have different lengths.
    LengthMismatch {
        /// Metadata tuples supplied.
        meta: usize,
        /// Traces supplied.
        traces: usize,
    },
    /// The same session id appears twice.
    DuplicateSession {
        /// The repeated id.
        id: usize,
    },
    /// Session ids are not in increasing order.
    MisorderedSession {
        /// The id that went backwards.
        id: usize,
    },
    /// A complete assembly (every session of a workload) is missing an id.
    MissingSession {
        /// The absent id.
        id: usize,
    },
    /// A complete assembly got the wrong number of sessions.
    CountMismatch {
        /// Sessions the workload has.
        expected: usize,
        /// Sessions supplied.
        found: usize,
    },
}

impl fmt::Display for ReportAssemblyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReportAssemblyError::LengthMismatch { meta, traces } => {
                write!(f, "{meta} session metadata tuples but {traces} traces")
            }
            ReportAssemblyError::DuplicateSession { id } => {
                write!(f, "session {id} reported twice")
            }
            ReportAssemblyError::MisorderedSession { id } => {
                write!(f, "session {id} out of order (ids must be increasing)")
            }
            ReportAssemblyError::MissingSession { id } => {
                write!(f, "session {id} missing from the assembled report")
            }
            ReportAssemblyError::CountMismatch { expected, found } => {
                write!(f, "expected {expected} session reports, got {found}")
            }
        }
    }
}

impl Error for ReportAssemblyError {}

impl ServeReport {
    /// Assembles the report from the drained sessions' traces.
    ///
    /// `meta` is one `(session_id, scenario, estimator label, packets
    /// streamed)` tuple per trace, in the same order as `traces`.  This is
    /// public so the cross-process coordinator (`vvd-net`) can reassemble
    /// one merged report from per-worker traces collected over the wire;
    /// merging in fixed global-session order makes the merged
    /// [`digest`](Self::digest) bit-identical to the in-process run's.
    ///
    /// Ids must be strictly increasing but need not be contiguous (a
    /// single worker's subset of a workload is a legitimate partial
    /// report); use [`assemble_complete`](Self::assemble_complete) when
    /// the result must cover a whole workload.
    ///
    /// # Errors
    /// [`ReportAssemblyError`] on mismatched lengths, duplicate ids or
    /// misordered ids.
    pub fn assemble(
        meta: Vec<(usize, String, String, usize)>,
        traces: Vec<EstimatorTrace>,
        ticks: u64,
        batches: BatchCounters,
        model_cache: ModelCacheStats,
        wall: Duration,
    ) -> Result<Self, ReportAssemblyError> {
        if meta.len() != traces.len() {
            return Err(ReportAssemblyError::LengthMismatch {
                meta: meta.len(),
                traces: traces.len(),
            });
        }
        let mut prev: Option<usize> = None;
        for (id, _, _, _) in &meta {
            match prev {
                Some(p) if *id == p => {
                    return Err(ReportAssemblyError::DuplicateSession { id: *id })
                }
                Some(p) if *id < p => {
                    return Err(ReportAssemblyError::MisorderedSession { id: *id })
                }
                _ => prev = Some(*id),
            }
        }
        let sessions: Vec<SessionReport> = meta
            .into_iter()
            .zip(&traces)
            .map(
                |((session_id, scenario, estimator, packets_streamed), trace)| SessionReport {
                    session_id,
                    scenario,
                    estimator,
                    packets_streamed,
                    packets_scored: trace.scored.len(),
                    per: packet_error_rate(&trace.scored),
                    cer: chip_error_rate(&trace.scored),
                    mse: if trace.estimates.is_empty() {
                        None
                    } else {
                        Some(mean_squared_error(&trace.estimates, &trace.truths))
                    },
                },
            )
            .collect();
        let packets_streamed = sessions.iter().map(|s| s.packets_streamed as u64).sum();
        let packets_served = sessions.iter().map(|s| s.packets_scored as u64).sum();
        Ok(ServeReport {
            sessions,
            traces,
            ticks,
            packets_streamed,
            packets_served,
            batches,
            model_cache,
            wall,
            phases: PhaseTimings::default(),
        })
    }

    /// Like [`assemble`](Self::assemble), but for a *complete* report over
    /// a workload of `expected` sessions: additionally requires exactly
    /// `expected` reports with ids `0..expected` — the invariant the
    /// cross-process coordinator needs after collecting per-worker reports
    /// (a crashed worker whose sessions were never recovered shows up here
    /// as a typed [`ReportAssemblyError::MissingSession`], not as a
    /// silently mis-zipped report).
    ///
    /// # Errors
    /// Everything [`assemble`](Self::assemble) rejects, plus
    /// [`ReportAssemblyError::CountMismatch`] and
    /// [`ReportAssemblyError::MissingSession`].
    pub fn assemble_complete(
        expected: usize,
        meta: Vec<(usize, String, String, usize)>,
        traces: Vec<EstimatorTrace>,
        ticks: u64,
        batches: BatchCounters,
        model_cache: ModelCacheStats,
        wall: Duration,
    ) -> Result<Self, ReportAssemblyError> {
        if meta.len() != expected {
            return Err(ReportAssemblyError::CountMismatch {
                expected,
                found: meta.len(),
            });
        }
        let report = Self::assemble(meta, traces, ticks, batches, model_cache, wall)?;
        // Ids are now known strictly increasing with exactly `expected` of
        // them, so at the first position whose id differs from its index
        // that index is the smallest absent id.
        if let Some((index, _)) = report
            .sessions
            .iter()
            .enumerate()
            .find(|(index, s)| s.session_id != *index)
        {
            return Err(ReportAssemblyError::MissingSession { id: index });
        }
        Ok(report)
    }

    /// Mean images per batched NN forward call (see
    /// [`BatchCounters::occupancy`]).
    pub fn batch_occupancy(&self) -> f64 {
        self.batches.occupancy()
    }

    /// Packets streamed (warm-up included) per processed tick — the
    /// engine's scheduling throughput.  Scored-packet throughput is
    /// `packets_served / ticks`.
    pub fn packets_per_tick(&self) -> f64 {
        if self.ticks == 0 {
            0.0
        } else {
            self.packets_streamed as f64 / self.ticks as f64
        }
    }

    /// A stable digest of every session's *outcomes* (labels, decode
    /// results, estimates and truths) — and of nothing else.
    ///
    /// Timing statistics (ticks, wall-clock, batch composition) are
    /// deliberately excluded: the digest is the quantity the concurrency
    /// property tests hold fixed while they randomise arrival orders,
    /// intervals and shard counts, all of which may legitimately change
    /// *when* work happened but never *what* was computed.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv::new();
        for trace in &self.traces {
            h.write_bytes(trace.label.as_bytes());
            h.write_u64(trace.scored.len() as u64);
            for o in &trace.scored {
                h.write_outcome(o);
            }
            h.write_u64(trace.per_packet.len() as u64);
            for o in &trace.per_packet {
                h.write_outcome(o);
            }
            h.write_u64(trace.estimates.len() as u64);
            for f in trace.estimates.iter().chain(trace.truths.iter()) {
                h.write_u64(f.len() as u64);
                for tap in f.taps().iter() {
                    h.write_u64(tap.re.to_bits());
                    h.write_u64(tap.im.to_bits());
                }
            }
        }
        h.0
    }
}

impl fmt::Display for ServeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "served {} packets ({} scored) from {} sessions in {} ticks ({:.1} pkt/tick, {:.2?} wall)",
            self.packets_streamed,
            self.packets_served,
            self.sessions.len(),
            self.ticks,
            self.packets_per_tick(),
            self.wall,
        )?;
        writeln!(
            f,
            "batched inference: {} forward calls for {} images (occupancy {:.2}, max batch {})",
            self.batches.batch_calls,
            self.batches.images,
            self.batch_occupancy(),
            self.batches.max_batch,
        )?;
        writeln!(f, "model cache: {}", self.model_cache)?;
        for s in &self.sessions {
            writeln!(
                f,
                "  session {:>3} [{} | {}] {} pkts  PER {:.3}  CER {:.4}{}",
                s.session_id,
                s.scenario,
                s.estimator,
                s.packets_scored,
                s.per,
                s.cer,
                match s.mse {
                    Some(mse) => format!("  MSE {mse:.3e}"),
                    None => String::new(),
                },
            )?;
        }
        Ok(())
    }
}

/// FNV-1a-64 over a canonical little-endian encoding (the digest only has
/// to be stable and collision-resistant across test runs, not
/// cryptographic).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    fn write_outcome(&mut self, o: &vvd_phy::DecodeOutcome) {
        self.write_u64(u64::from(o.crc_ok));
        self.write_u64(o.chip_errors as u64);
        self.write_u64(o.chip_count as u64);
        self.write_u64(o.symbol_errors as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(label: &str) -> EstimatorTrace {
        EstimatorTrace {
            label: label.into(),
            scored: Vec::new(),
            estimates: Vec::new(),
            truths: Vec::new(),
            per_packet: Vec::new(),
        }
    }

    type Meta = Vec<(usize, String, String, usize)>;

    fn meta_for(ids: &[usize]) -> (Meta, Vec<EstimatorTrace>) {
        let meta = ids
            .iter()
            .map(|&id| (id, "paper".to_string(), format!("est-{id}"), 5))
            .collect();
        let traces = ids.iter().map(|&id| trace(&format!("est-{id}"))).collect();
        (meta, traces)
    }

    fn assemble_ids(ids: &[usize]) -> Result<ServeReport, ReportAssemblyError> {
        let (meta, traces) = meta_for(ids);
        ServeReport::assemble(
            meta,
            traces,
            10,
            BatchCounters::default(),
            ModelCacheStats::default(),
            Duration::ZERO,
        )
    }

    fn assemble_complete_ids(
        expected: usize,
        ids: &[usize],
    ) -> Result<ServeReport, ReportAssemblyError> {
        let (meta, traces) = meta_for(ids);
        ServeReport::assemble_complete(
            expected,
            meta,
            traces,
            10,
            BatchCounters::default(),
            ModelCacheStats::default(),
            Duration::ZERO,
        )
    }

    #[test]
    fn assemble_accepts_increasing_possibly_sparse_ids() {
        // A single worker's subset of a workload is a legitimate partial
        // report: increasing but non-contiguous ids assemble fine.
        let report = assemble_ids(&[1, 4, 6]).unwrap();
        assert_eq!(report.sessions.len(), 3);
        assert_eq!(report.sessions[1].session_id, 4);
    }

    #[test]
    fn assemble_rejects_each_defect_with_a_typed_error() {
        // Duplicated session report — the exact bug the old blind zip let
        // through silently.
        assert_eq!(
            assemble_ids(&[0, 1, 1, 2]).unwrap_err(),
            ReportAssemblyError::DuplicateSession { id: 1 }
        );
        // Misordered reports.
        assert_eq!(
            assemble_ids(&[0, 2, 1]).unwrap_err(),
            ReportAssemblyError::MisorderedSession { id: 1 }
        );
        // Metadata/trace length mismatch.
        let (meta, mut traces) = meta_for(&[0, 1]);
        traces.pop();
        assert_eq!(
            ServeReport::assemble(
                meta,
                traces,
                10,
                BatchCounters::default(),
                ModelCacheStats::default(),
                Duration::ZERO,
            )
            .unwrap_err(),
            ReportAssemblyError::LengthMismatch { meta: 2, traces: 1 }
        );
    }

    #[test]
    fn assemble_complete_requires_exactly_the_whole_workload() {
        assert!(assemble_complete_ids(3, &[0, 1, 2]).is_ok());
        // Too few reports.
        assert_eq!(
            assemble_complete_ids(3, &[0, 1]).unwrap_err(),
            ReportAssemblyError::CountMismatch {
                expected: 3,
                found: 2
            }
        );
        // Right count, but a dropped session replaced by a later id — the
        // smallest absent id is reported.
        assert_eq!(
            assemble_complete_ids(3, &[0, 2, 3]).unwrap_err(),
            ReportAssemblyError::MissingSession { id: 1 }
        );
        // Duplicates are still caught by the underlying validation.
        assert_eq!(
            assemble_complete_ids(3, &[0, 1, 1]).unwrap_err(),
            ReportAssemblyError::DuplicateSession { id: 1 }
        );
    }
}
