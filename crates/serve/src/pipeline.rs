//! The double-buffered tick pipeline: synthesizing tick T+1's packets
//! while tick T's batch infers.
//!
//! A serve tick interleaves two very different workloads: waveform
//! regeneration + preamble LS (DSP-bound, per session) and the coalesced
//! `predict_batch` forward passes (GEMM-bound).  They run back-to-back in
//! the plain engine even though the *next* tick's DSP products depend on
//! nothing the current tick's inference computes.  This module overlaps
//! them:
//!
//! 1. After the prepare phase, every due session holds a pending packet,
//!    so each session's post-commit streaming position — and therefore
//!    the next tick and its due set — is fully determined
//!    ([`plan_jobs`]).  Only sessions whose next packet actually needs
//!    regeneration get a job.
//! 2. While the engine runs inference + commit, scope threads run the
//!    jobs ([`run_jobs`]): each synthesizes one packet's
//!    estimator-independent products from `Arc`-shared immutable campaign
//!    data ([`synthesize_packet`]) — jobs never borrow a session, so they
//!    cannot race the commit phase's mutations.
//! 3. At the tick's rendezvous the engine joins the threads and stashes
//!    the products; the next prepare consumes them in tick order.
//!
//! **Determinism:** only fully-synthesized packets cross the buffer, each
//! the output of the *same* routine the inline path runs on the same
//! immutable inputs — so every byte is identical whether a product was
//! prefetched, recomputed, or the pipeline was off.  The pipeline
//! golden/property tests pin digests across pipeline on/off, every shard
//! count and every cluster size.

use crate::session::{synthesize_packet, SynthesizedPacket};
use crate::store::SessionStore;
use crate::timing::Stopwatch;
use std::sync::Arc;
use std::time::Duration;
use vvd_testbed::Campaign;

/// One prefetchable packet synthesis: everything needed to regenerate a
/// session's next packet off-thread, with no borrow of the session.
pub(crate) struct SynthJob {
    /// Index of the session in the store (id order).
    pub session_idx: usize,
    /// The packet (cursor) index being synthesized.
    pub packet_index: usize,
    /// The session's `Arc`-shared immutable campaign.
    pub campaign: Arc<Campaign>,
    /// The campaign set the session streams.
    pub set: usize,
    /// The frame-record index of the packet within the set.
    pub record_index: usize,
    /// LS channel-tap count of the campaign's equalizer config.
    pub taps: usize,
}

/// The products of one tick's prefetch, waiting for their tick to start.
pub(crate) struct PrefetchBuffer {
    /// The tick the products were synthesized for.
    pub tick: u64,
    /// `(session index, product)` pairs, one per executed job.
    pub items: Vec<(usize, SynthesizedPacket)>,
}

/// Plans the next tick's synthesis jobs, mid-tick.
///
/// Must run after the prepare phase (every due session pending) and
/// before any commit: at that point each session's post-commit position
/// is a pure projection ([`position_after_commit`]), so the next tick —
/// the minimum projected due tick over unfinished sessions — and its due
/// set are exact, not heuristic.  Returns `None` when the workload will
/// be drained or no due session needs regeneration.
///
/// [`position_after_commit`]: crate::session::LinkSession::position_after_commit
pub(crate) fn plan_jobs(store: &SessionStore) -> Option<(u64, Vec<SynthJob>)> {
    let mut next_tick = u64::MAX;
    for session in store.sessions() {
        let (cursor, due) = session.position_after_commit();
        if cursor < session.total_packets() {
            next_tick = next_tick.min(due);
        }
    }
    if next_tick == u64::MAX {
        return None;
    }
    let jobs: Vec<SynthJob> = store
        .sessions()
        .iter()
        .enumerate()
        .filter_map(|(session_idx, session)| {
            let (cursor, due) = session.position_after_commit();
            if cursor < session.total_packets() && due <= next_tick && session.needs_regen(cursor) {
                let (campaign, set, record_index, taps) = session.synth_inputs(cursor);
                Some(SynthJob {
                    session_idx,
                    packet_index: cursor,
                    campaign,
                    set,
                    record_index,
                    taps,
                })
            } else {
                None
            }
        })
        .collect();
    if jobs.is_empty() {
        return None;
    }
    Some((next_tick, jobs))
}

/// Runs a chunk of synthesis jobs on the calling thread, returning the
/// products plus the chunk's busy time (for the overlap accounting).
pub(crate) fn run_jobs(jobs: Vec<SynthJob>) -> (Vec<(usize, SynthesizedPacket)>, Duration) {
    let sw = Stopwatch::start();
    let items = jobs
        .into_iter()
        .map(|job| {
            let product = synthesize_packet(
                &job.campaign,
                job.set,
                job.record_index,
                job.taps,
                job.packet_index,
            );
            (job.session_idx, product)
        })
        .collect();
    (items, sw.elapsed())
}
