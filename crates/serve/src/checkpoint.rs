//! Durable session checkpoints: versioned binary frames that carry a
//! serve engine's *streaming* state across process boundaries.
//!
//! A checkpoint is taken only at a tick boundary (no session holds a
//! pending half-served packet) and records, per session, exactly the
//! state that streaming accumulated: the arrival cursor, the next-due
//! tick, the accumulated [`EstimatorTrace`] and the estimator's
//! [`EstimatorState`].  Everything else — campaigns, fitted AR models,
//! trained VVD weights — is a deterministic function of the workload spec
//! and is rebuilt by [`LoadGenerator`](crate::LoadGenerator) on resume
//! (VVD weights rehydrate through the shared
//! [`ModelCache`](vvd_estimation::ModelCache); the checkpointed
//! [`ModelKey`] pins that the rehydrated model is the
//! one the checkpoint saw).  That split is what makes resume
//! *deterministic by construction*: a resumed engine replays the same
//! per-tick plan the uninterrupted engine would have run, so its final
//! [`ServeReport::digest`](crate::ServeReport::digest) is bit-identical.
//!
//! # Frame layout
//!
//! The encoding follows the `vvd-net` wire-codec conventions — explicit
//! little-endian integers, floats as IEEE-754 bit patterns, length-
//! prefixed sequences decoded element-wise (never allocated from an
//! untrusted length), total decoding with a typed [`CheckpointError`] for
//! every way a frame can be truncated, corrupted or oversized:
//!
//! ```text
//! frame   := magic "VVDC" · version u16 · len u32 · payload
//! payload := ticks u64 · batches · n_sessions u64 · session*
//! batches := batch_calls u64 · images u64 · max_batch u64
//! session := id u64 · scenario str · label str · interval u64
//!            · next_due u64 · cursor u64 · estimator state · trace
//! trace   := label str · outcome* · outcome* · fir* · fir*   (scored,
//!            per-packet, estimates, truths; each length-prefixed)
//! state   := tag u8 · variant payload (recursive for fallback)
//! ```
//!
//! Frames are self-delimiting, so a [`CheckpointStore`] can keep many and
//! heal from a corrupt newest frame by replaying from the previous good
//! one (`load_latest` skips frames that fail to decode).

use crate::planner::BatchCounters;
use std::error::Error;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use vvd_core::ModelKey;
use vvd_dsp::{CVec, Complex, FirFilter};
use vvd_estimation::{EstimatorState, KalmanTapState, StateError};
use vvd_phy::DecodeOutcome;
use vvd_testbed::stream::EstimatorTrace;

/// Leading magic of every checkpoint frame.
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"VVDC";

/// Version of the checkpoint frame layout.
pub const CHECKPOINT_VERSION: u16 = 1;

/// Upper bound on a frame's payload size — large enough for any real
/// workload snapshot, small enough that a corrupt length field cannot
/// drive decoding into absurd territory.
pub const MAX_CHECKPOINT_PAYLOAD: u32 = 64 * 1024 * 1024;

/// Everything that can go wrong writing, reading or applying a
/// checkpoint.
#[derive(Debug)]
pub enum CheckpointError {
    /// An underlying I/O failure (store directory, file read/write).
    Io(io::Error),
    /// The frame does not start with [`CHECKPOINT_MAGIC`].
    BadMagic {
        /// The four bytes actually found.
        found: [u8; 4],
    },
    /// The frame's version is not [`CHECKPOINT_VERSION`].
    UnsupportedVersion {
        /// The version actually found.
        found: u16,
    },
    /// The frame ended before the named field was complete.
    Truncated {
        /// Which field was being decoded.
        context: &'static str,
    },
    /// A field decoded but its value is invalid.
    Malformed {
        /// Which field was invalid.
        context: &'static str,
    },
    /// The frame decoded completely but bytes were left over.
    TrailingBytes {
        /// How many bytes were left.
        extra: usize,
    },
    /// The frame's declared payload length exceeds
    /// [`MAX_CHECKPOINT_PAYLOAD`].
    FrameTooLarge {
        /// The declared length.
        len: u64,
    },
    /// A checkpoint was requested mid-tick: the session still holds a
    /// prepared-but-uncompleted packet.  Checkpoints are only taken at
    /// tick boundaries.
    MidTick {
        /// Id of the offending session.
        session: usize,
    },
    /// A checkpointed session does not match the session the resumed
    /// workload built at the same position.
    SessionMismatch {
        /// Id of the offending session.
        session: usize,
        /// What disagreed.
        context: String,
    },
    /// The checkpoint and the resumed workload have different session
    /// counts.
    SessionCount {
        /// Sessions in the checkpoint.
        expected: usize,
        /// Sessions in the resumed workload.
        found: usize,
    },
    /// An estimator rejected its checkpointed state.
    State {
        /// Id of the offending session.
        session: usize,
        /// The estimator's own error.
        error: StateError,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::BadMagic { found } => {
                write!(f, "bad checkpoint magic {found:02x?}")
            }
            CheckpointError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported checkpoint version {found} (expected {CHECKPOINT_VERSION})"
                )
            }
            CheckpointError::Truncated { context } => {
                write!(f, "checkpoint frame truncated while decoding {context}")
            }
            CheckpointError::Malformed { context } => {
                write!(f, "malformed checkpoint field: {context}")
            }
            CheckpointError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after checkpoint payload")
            }
            CheckpointError::FrameTooLarge { len } => {
                write!(
                    f,
                    "checkpoint payload of {len} bytes exceeds the {MAX_CHECKPOINT_PAYLOAD}-byte budget"
                )
            }
            CheckpointError::MidTick { session } => {
                write!(
                    f,
                    "cannot checkpoint mid-tick: session {session} holds a pending packet"
                )
            }
            CheckpointError::SessionMismatch { session, context } => {
                write!(f, "checkpointed session {session} mismatch: {context}")
            }
            CheckpointError::SessionCount { expected, found } => {
                write!(
                    f,
                    "checkpoint has {expected} sessions but the resumed workload built {found}"
                )
            }
            CheckpointError::State { session, error } => {
                write!(
                    f,
                    "session {session} rejected its checkpointed state: {error}"
                )
            }
        }
    }
}

impl Error for CheckpointError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            CheckpointError::State { error, .. } => Some(error),
            _ => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// The checkpointed streaming state of one [`LinkSession`](crate::LinkSession).
///
/// No `PartialEq`: [`EstimatorTrace`] does not compare, and checkpoint
/// equality is defined at the *frame* level anyway — two checkpoints are
/// the same exactly when their [`EngineCheckpoint::to_frame`] bytes are.
#[derive(Debug, Clone)]
pub struct SessionCheckpoint {
    /// Workload-wide session id.
    pub id: usize,
    /// Scenario spec the session's campaign was generated from (resume
    /// validation: the rebuilt session must match).
    pub scenario: String,
    /// Label the session reports under.
    pub label: String,
    /// Arrival period in ticks.
    pub interval: u64,
    /// Tick of the next packet arrival.
    pub next_due: u64,
    /// Index of the next test packet to stream.
    pub cursor: usize,
    /// The estimator's streaming state.
    pub estimator: EstimatorState,
    /// The accumulated trace up to the checkpoint tick.
    pub trace: EstimatorTrace,
}

/// A whole-engine snapshot at a tick boundary: every session's
/// [`SessionCheckpoint`] plus the engine's own counters.
#[derive(Debug, Clone)]
pub struct EngineCheckpoint {
    /// Ticks the engine had processed.
    pub ticks: u64,
    /// Accumulated batching counters.
    pub batches: BatchCounters,
    /// Per-session state, in session-id order.
    pub sessions: Vec<SessionCheckpoint>,
}

impl EngineCheckpoint {
    /// Encodes the checkpoint as one self-delimiting versioned frame.
    pub fn to_frame(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        put_u64(&mut payload, self.ticks);
        put_u64(&mut payload, self.batches.batch_calls);
        put_u64(&mut payload, self.batches.images);
        put_u64(&mut payload, self.batches.max_batch as u64);
        put_u64(&mut payload, self.sessions.len() as u64);
        for session in &self.sessions {
            put_u64(&mut payload, session.id as u64);
            put_str(&mut payload, &session.scenario);
            put_str(&mut payload, &session.label);
            put_u64(&mut payload, session.interval);
            put_u64(&mut payload, session.next_due);
            put_u64(&mut payload, session.cursor as u64);
            put_state(&mut payload, &session.estimator);
            put_trace(&mut payload, &session.trace);
        }
        assert!(
            payload.len() as u64 <= MAX_CHECKPOINT_PAYLOAD as u64,
            "checkpoint payload exceeds the frame budget"
        );
        let mut frame = Vec::with_capacity(4 + 2 + 4 + payload.len());
        frame.extend_from_slice(&CHECKPOINT_MAGIC);
        frame.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&payload);
        frame
    }

    /// Decodes one frame, totally: every error path (wrong magic, wrong
    /// version, truncation, oversized length, trailing bytes) is a typed
    /// [`CheckpointError`], never a panic, and no allocation is sized
    /// from an untrusted length.
    pub fn from_frame(bytes: &[u8]) -> Result<Self, CheckpointError> {
        let mut dec = Dec::new(bytes);
        let magic = dec.take(4, "magic")?;
        if magic != CHECKPOINT_MAGIC {
            let mut found = [0u8; 4];
            found.copy_from_slice(magic);
            return Err(CheckpointError::BadMagic { found });
        }
        let version = dec.take_u16("version")?;
        if version != CHECKPOINT_VERSION {
            return Err(CheckpointError::UnsupportedVersion { found: version });
        }
        let len = dec.take_u32("payload length")?;
        if len > MAX_CHECKPOINT_PAYLOAD {
            return Err(CheckpointError::FrameTooLarge { len: len as u64 });
        }
        if dec.remaining() != len as usize {
            // The declared length must match the carried payload exactly:
            // less is truncation, more is trailing garbage.
            if dec.remaining() < len as usize {
                return Err(CheckpointError::Truncated { context: "payload" });
            }
            return Err(CheckpointError::TrailingBytes {
                extra: dec.remaining() - len as usize,
            });
        }

        let ticks = dec.take_u64("ticks")?;
        let batches = BatchCounters {
            batch_calls: dec.take_u64("batch calls")?,
            images: dec.take_u64("batch images")?,
            max_batch: dec.take_u64("max batch")? as usize,
        };
        let n_sessions = dec.take_u64("session count")?;
        let mut sessions = Vec::new();
        for _ in 0..n_sessions {
            let id = dec.take_u64("session id")? as usize;
            let scenario = take_str(&mut dec, "session scenario")?;
            let label = take_str(&mut dec, "session label")?;
            let interval = dec.take_u64("session interval")?;
            let next_due = dec.take_u64("session next-due tick")?;
            let cursor = dec.take_u64("session cursor")? as usize;
            let estimator = take_state(&mut dec, 0)?;
            let trace = take_trace(&mut dec)?;
            sessions.push(SessionCheckpoint {
                id,
                scenario,
                label,
                interval,
                next_due,
                cursor,
                estimator,
                trace,
            });
        }
        dec.finish()?;
        Ok(EngineCheckpoint {
            ticks,
            batches,
            sessions,
        })
    }
}

// ---------------------------------------------------------------------------
// Encoding primitives (little-endian, following the vvd-net conventions)
// ---------------------------------------------------------------------------

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn put_complex(out: &mut Vec<u8>, c: Complex) {
    put_f64(out, c.re);
    put_f64(out, c.im);
}

fn put_fir(out: &mut Vec<u8>, f: &FirFilter) {
    put_u64(out, f.len() as u64);
    for &tap in f.taps().iter() {
        put_complex(out, tap);
    }
}

fn put_outcome(out: &mut Vec<u8>, o: &DecodeOutcome) {
    put_u8(out, u8::from(o.crc_ok));
    put_u64(out, o.chip_errors as u64);
    put_u64(out, o.chip_count as u64);
    put_u64(out, o.symbol_errors as u64);
}

fn put_trace(out: &mut Vec<u8>, t: &EstimatorTrace) {
    put_str(out, &t.label);
    put_u64(out, t.scored.len() as u64);
    for o in &t.scored {
        put_outcome(out, o);
    }
    put_u64(out, t.per_packet.len() as u64);
    for o in &t.per_packet {
        put_outcome(out, o);
    }
    put_u64(out, t.estimates.len() as u64);
    for f in &t.estimates {
        put_fir(out, f);
    }
    put_u64(out, t.truths.len() as u64);
    for f in &t.truths {
        put_fir(out, f);
    }
}

fn put_state(out: &mut Vec<u8>, state: &EstimatorState) {
    match state {
        EstimatorState::Stateless => put_u8(out, 0),
        EstimatorState::Previous { history } => {
            put_u8(out, 1);
            put_u64(out, history.len() as u64);
            for f in history {
                put_fir(out, f);
            }
        }
        EstimatorState::AgedPreamble { history } => {
            put_u8(out, 2);
            put_u64(out, history.len() as u64);
            for entry in history {
                match entry {
                    Some(f) => {
                        put_u8(out, 1);
                        put_fir(out, f);
                    }
                    None => put_u8(out, 0),
                }
            }
        }
        EstimatorState::Kalman { taps } => {
            put_u8(out, 3);
            put_u64(out, taps.len() as u64);
            for tap in taps {
                put_u64(out, tap.state.len() as u64);
                for &c in &tap.state {
                    put_complex(out, c);
                }
                for &c in &tap.cov {
                    put_complex(out, c);
                }
                put_u64(out, tap.history.len() as u64);
                for &c in &tap.history {
                    put_complex(out, c);
                }
            }
        }
        EstimatorState::Vvd { key } => {
            put_u8(out, 4);
            match key {
                Some(k) => {
                    put_u8(out, 1);
                    let (a, b) = k.to_parts();
                    put_u64(out, a);
                    put_u64(out, b);
                }
                None => put_u8(out, 0),
            }
        }
        EstimatorState::Fallback { primary, secondary } => {
            put_u8(out, 5);
            put_state(out, primary);
            put_state(out, secondary);
        }
    }
}

// ---------------------------------------------------------------------------
// Decoding primitives (total: typed errors, no untrusted-length allocation)
// ---------------------------------------------------------------------------

struct Dec<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Dec { bytes, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], CheckpointError> {
        if self.remaining() < n {
            return Err(CheckpointError::Truncated { context });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn take_u8(&mut self, context: &'static str) -> Result<u8, CheckpointError> {
        Ok(self.take(1, context)?[0])
    }

    fn take_u16(&mut self, context: &'static str) -> Result<u16, CheckpointError> {
        let b = self.take(2, context)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn take_u32(&mut self, context: &'static str) -> Result<u32, CheckpointError> {
        let b = self.take(4, context)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn take_u64(&mut self, context: &'static str) -> Result<u64, CheckpointError> {
        let b = self.take(8, context)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(b);
        Ok(u64::from_le_bytes(arr))
    }

    fn take_f64(&mut self, context: &'static str) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.take_u64(context)?))
    }

    fn finish(&self) -> Result<(), CheckpointError> {
        if self.remaining() != 0 {
            return Err(CheckpointError::TrailingBytes {
                extra: self.remaining(),
            });
        }
        Ok(())
    }
}

fn take_str(dec: &mut Dec<'_>, context: &'static str) -> Result<String, CheckpointError> {
    let len = dec.take_u64(context)? as usize;
    let bytes = dec.take(len, context)?;
    String::from_utf8(bytes.to_vec()).map_err(|_| CheckpointError::Malformed { context })
}

fn take_complex(dec: &mut Dec<'_>, context: &'static str) -> Result<Complex, CheckpointError> {
    Ok(Complex::new(dec.take_f64(context)?, dec.take_f64(context)?))
}

fn take_fir(dec: &mut Dec<'_>, context: &'static str) -> Result<FirFilter, CheckpointError> {
    let len = dec.take_u64(context)?;
    // Element-wise: the Vec grows as real bytes are consumed, so a corrupt
    // length can only run into `Truncated`, never a huge allocation.
    let mut taps = Vec::new();
    for _ in 0..len {
        taps.push(take_complex(dec, context)?);
    }
    Ok(FirFilter::new(CVec(taps)))
}

fn take_outcome(
    dec: &mut Dec<'_>,
    context: &'static str,
) -> Result<DecodeOutcome, CheckpointError> {
    let crc = dec.take_u8(context)?;
    if crc > 1 {
        return Err(CheckpointError::Malformed { context });
    }
    Ok(DecodeOutcome {
        crc_ok: crc == 1,
        chip_errors: dec.take_u64(context)? as usize,
        chip_count: dec.take_u64(context)? as usize,
        symbol_errors: dec.take_u64(context)? as usize,
    })
}

fn take_trace(dec: &mut Dec<'_>) -> Result<EstimatorTrace, CheckpointError> {
    let label = take_str(dec, "trace label")?;
    let n_scored = dec.take_u64("scored count")?;
    let mut scored = Vec::new();
    for _ in 0..n_scored {
        scored.push(take_outcome(dec, "scored outcome")?);
    }
    let n_per_packet = dec.take_u64("per-packet count")?;
    let mut per_packet = Vec::new();
    for _ in 0..n_per_packet {
        per_packet.push(take_outcome(dec, "per-packet outcome")?);
    }
    let n_estimates = dec.take_u64("estimate count")?;
    let mut estimates = Vec::new();
    for _ in 0..n_estimates {
        estimates.push(take_fir(dec, "estimate taps")?);
    }
    let n_truths = dec.take_u64("truth count")?;
    let mut truths = Vec::new();
    for _ in 0..n_truths {
        truths.push(take_fir(dec, "truth taps")?);
    }
    Ok(EstimatorTrace {
        label,
        scored,
        estimates,
        truths,
        per_packet,
    })
}

/// Guard against unboundedly recursive (corrupt) fallback nesting.
const MAX_STATE_DEPTH: u8 = 16;

fn take_state(dec: &mut Dec<'_>, depth: u8) -> Result<EstimatorState, CheckpointError> {
    if depth >= MAX_STATE_DEPTH {
        return Err(CheckpointError::Malformed {
            context: "estimator state nesting too deep",
        });
    }
    match dec.take_u8("estimator state tag")? {
        0 => Ok(EstimatorState::Stateless),
        1 => {
            let n = dec.take_u64("previous history count")?;
            let mut history = Vec::new();
            for _ in 0..n {
                history.push(take_fir(dec, "previous history taps")?);
            }
            Ok(EstimatorState::Previous { history })
        }
        2 => {
            let n = dec.take_u64("aged-preamble history count")?;
            let mut history = Vec::new();
            for _ in 0..n {
                match dec.take_u8("aged-preamble entry tag")? {
                    0 => history.push(None),
                    1 => history.push(Some(take_fir(dec, "aged-preamble taps")?)),
                    _ => {
                        return Err(CheckpointError::Malformed {
                            context: "aged-preamble entry tag",
                        })
                    }
                }
            }
            Ok(EstimatorState::AgedPreamble { history })
        }
        3 => {
            let n_taps = dec.take_u64("kalman tap count")?;
            let mut taps = Vec::new();
            for _ in 0..n_taps {
                let order = dec.take_u64("kalman order")? as usize;
                let mut state = Vec::new();
                for _ in 0..order {
                    state.push(take_complex(dec, "kalman state")?);
                }
                let mut cov = Vec::new();
                for _ in 0..order.saturating_mul(order) {
                    cov.push(take_complex(dec, "kalman covariance")?);
                }
                let n_history = dec.take_u64("kalman history count")?;
                let mut history = Vec::new();
                for _ in 0..n_history {
                    history.push(take_complex(dec, "kalman history")?);
                }
                taps.push(KalmanTapState {
                    state,
                    cov,
                    history,
                });
            }
            Ok(EstimatorState::Kalman { taps })
        }
        4 => match dec.take_u8("vvd key tag")? {
            0 => Ok(EstimatorState::Vvd { key: None }),
            1 => {
                let a = dec.take_u64("vvd key")?;
                let b = dec.take_u64("vvd key")?;
                Ok(EstimatorState::Vvd {
                    key: Some(ModelKey::from_parts(a, b)),
                })
            }
            _ => Err(CheckpointError::Malformed {
                context: "vvd key tag",
            }),
        },
        5 => {
            let primary = Box::new(take_state(dec, depth + 1)?);
            let secondary = Box::new(take_state(dec, depth + 1)?);
            Ok(EstimatorState::Fallback { primary, secondary })
        }
        _ => Err(CheckpointError::Malformed {
            context: "estimator state tag",
        }),
    }
}

// ---------------------------------------------------------------------------
// Stores
// ---------------------------------------------------------------------------

/// Somewhere checkpoint frames can be kept and the latest good one
/// recovered from.
///
/// Stores keep *frames*, not decoded checkpoints: a store never trusts
/// its own contents, and `load_latest` heals from a corrupt newest frame
/// by falling back to the previous good one.
pub trait CheckpointStore: Send {
    /// Persists one checkpoint.
    ///
    /// # Errors
    /// Any store-level failure (I/O for on-disk stores).
    fn save(&mut self, checkpoint: &EngineCheckpoint) -> Result<(), CheckpointError>;

    /// Decodes the newest checkpoint that is still readable, skipping
    /// corrupt newer frames ("heal by replaying from the previous good
    /// frame").  `Ok(None)` when the store holds no frames at all.
    ///
    /// # Errors
    /// When frames exist but none decodes, the newest frame's decode
    /// error.
    fn load_latest(&self) -> Result<Option<EngineCheckpoint>, CheckpointError>;
}

/// An in-memory [`CheckpointStore`]: every saved frame, in save order.
#[derive(Debug, Default)]
pub struct MemoryCheckpointStore {
    frames: Vec<(u64, Vec<u8>)>,
}

impl MemoryCheckpointStore {
    /// An empty store.
    pub fn new() -> Self {
        MemoryCheckpointStore { frames: Vec::new() }
    }

    /// The saved `(ticks, frame)` pairs, oldest first.
    pub fn frames(&self) -> &[(u64, Vec<u8>)] {
        &self.frames
    }

    /// The newest saved frame's bytes, undecoded.
    pub fn latest_frame(&self) -> Option<&[u8]> {
        self.frames.last().map(|(_, f)| f.as_slice())
    }

    /// Appends a raw frame (tests use this to inject corrupt frames).
    pub fn push_raw(&mut self, ticks: u64, frame: Vec<u8>) {
        self.frames.push((ticks, frame));
    }
}

impl CheckpointStore for MemoryCheckpointStore {
    fn save(&mut self, checkpoint: &EngineCheckpoint) -> Result<(), CheckpointError> {
        self.frames.push((checkpoint.ticks, checkpoint.to_frame()));
        Ok(())
    }

    fn load_latest(&self) -> Result<Option<EngineCheckpoint>, CheckpointError> {
        let mut newest_error = None;
        for (_, frame) in self.frames.iter().rev() {
            match EngineCheckpoint::from_frame(frame) {
                Ok(checkpoint) => return Ok(Some(checkpoint)),
                Err(e) => {
                    if newest_error.is_none() {
                        newest_error = Some(e);
                    }
                }
            }
        }
        match newest_error {
            Some(e) => Err(e),
            None => Ok(None),
        }
    }
}

/// An on-disk [`CheckpointStore`]: one `ckpt-<ticks>.vvdc` file per frame
/// in one directory, written atomically (temp file + rename) so a crash
/// mid-write can at worst leave a temp file behind, never a torn frame
/// under the real name.
#[derive(Debug)]
pub struct DirCheckpointStore {
    dir: PathBuf,
}

impl DirCheckpointStore {
    /// Opens (creating if needed) a checkpoint directory.
    ///
    /// # Errors
    /// [`CheckpointError::Io`] when the directory cannot be created.
    pub fn new(dir: impl Into<PathBuf>) -> Result<Self, CheckpointError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(DirCheckpointStore { dir })
    }

    /// The directory frames are kept in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn frame_paths_newest_first(&self) -> Result<Vec<PathBuf>, CheckpointError> {
        let mut names: Vec<String> = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.starts_with("ckpt-") && name.ends_with(".vvdc") {
                names.push(name);
            }
        }
        // Zero-padded tick counts make lexicographic order = tick order.
        names.sort_unstable();
        names.reverse();
        Ok(names.into_iter().map(|n| self.dir.join(n)).collect())
    }
}

impl CheckpointStore for DirCheckpointStore {
    fn save(&mut self, checkpoint: &EngineCheckpoint) -> Result<(), CheckpointError> {
        let name = format!("ckpt-{:020}.vvdc", checkpoint.ticks);
        let tmp = self.dir.join(format!(".{name}.tmp"));
        fs::write(&tmp, checkpoint.to_frame())?;
        fs::rename(&tmp, self.dir.join(name))?;
        Ok(())
    }

    fn load_latest(&self) -> Result<Option<EngineCheckpoint>, CheckpointError> {
        let mut newest_error = None;
        for path in self.frame_paths_newest_first()? {
            match load_checkpoint_file(&path) {
                Ok(checkpoint) => return Ok(Some(checkpoint)),
                Err(e) => {
                    if newest_error.is_none() {
                        newest_error = Some(e);
                    }
                }
            }
        }
        match newest_error {
            Some(e) => Err(e),
            None => Ok(None),
        }
    }
}

/// Reads and decodes one checkpoint frame file, surfacing the typed
/// decode error directly (no healing — that is
/// [`CheckpointStore::load_latest`]'s job).
///
/// # Errors
/// [`CheckpointError::Io`] for unreadable files, any decode error for
/// corrupt ones.
pub fn load_checkpoint_file(path: &Path) -> Result<EngineCheckpoint, CheckpointError> {
    EngineCheckpoint::from_frame(&fs::read(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fir(scale: f64, taps: usize) -> FirFilter {
        FirFilter::new(CVec(
            (0..taps)
                .map(|k| Complex::new(scale + k as f64 * 0.25, -scale * 0.5))
                .collect(),
        ))
    }

    fn outcome(k: usize) -> DecodeOutcome {
        DecodeOutcome {
            crc_ok: k.is_multiple_of(2),
            chip_errors: k,
            chip_count: 32 * (k + 1),
            symbol_errors: k / 2,
        }
    }

    fn sample_checkpoint() -> EngineCheckpoint {
        EngineCheckpoint {
            ticks: 42,
            batches: BatchCounters {
                batch_calls: 7,
                images: 19,
                max_batch: 5,
            },
            sessions: vec![
                SessionCheckpoint {
                    id: 0,
                    scenario: "paper".into(),
                    label: "Ground Truth".into(),
                    interval: 1,
                    next_due: 42,
                    cursor: 12,
                    estimator: EstimatorState::Stateless,
                    trace: EstimatorTrace {
                        label: "Ground Truth".into(),
                        scored: vec![outcome(0), outcome(3)],
                        estimates: vec![fir(1.0, 3)],
                        truths: vec![fir(2.0, 3)],
                        per_packet: vec![outcome(0), outcome(1), outcome(3)],
                    },
                },
                SessionCheckpoint {
                    id: 5,
                    scenario: "rician:k=6,doppler=30".into(),
                    label: "Combined".into(),
                    interval: 3,
                    next_due: 44,
                    cursor: 4,
                    estimator: EstimatorState::Fallback {
                        primary: Box::new(EstimatorState::AgedPreamble {
                            history: vec![None, Some(fir(0.5, 2))],
                        }),
                        secondary: Box::new(EstimatorState::Fallback {
                            primary: Box::new(EstimatorState::Kalman {
                                taps: vec![KalmanTapState {
                                    state: vec![Complex::new(0.1, 0.2), Complex::new(0.3, 0.4)],
                                    cov: vec![Complex::ONE; 4],
                                    history: vec![Complex::new(-0.5, 0.25)],
                                }],
                            }),
                            secondary: Box::new(EstimatorState::Vvd {
                                key: Some(ModelKey::from_parts(0xdead_beef, 0x1234_5678)),
                            }),
                        }),
                    },
                    trace: EstimatorTrace {
                        label: "Combined".into(),
                        scored: Vec::new(),
                        estimates: Vec::new(),
                        truths: Vec::new(),
                        per_packet: vec![outcome(2)],
                    },
                },
            ],
        }
    }

    fn traces_equal(a: &EstimatorTrace, b: &EstimatorTrace) -> bool {
        a.label == b.label
            && a.scored == b.scored
            && a.estimates == b.estimates
            && a.truths == b.truths
            && a.per_packet == b.per_packet
    }

    #[test]
    fn frame_round_trips_bit_identically() {
        let checkpoint = sample_checkpoint();
        let frame = checkpoint.to_frame();
        let decoded = EngineCheckpoint::from_frame(&frame).unwrap();
        assert_eq!(decoded.ticks, checkpoint.ticks);
        assert_eq!(decoded.batches, checkpoint.batches);
        assert_eq!(decoded.sessions.len(), checkpoint.sessions.len());
        for (a, b) in decoded.sessions.iter().zip(&checkpoint.sessions) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.scenario, b.scenario);
            assert_eq!(a.label, b.label);
            assert_eq!(a.interval, b.interval);
            assert_eq!(a.next_due, b.next_due);
            assert_eq!(a.cursor, b.cursor);
            assert_eq!(a.estimator, b.estimator);
            assert!(traces_equal(&a.trace, &b.trace));
        }
        // Determinism of the encoding itself: re-encoding the decoded
        // checkpoint yields the same bytes.
        assert_eq!(decoded.to_frame(), frame);
    }

    #[test]
    fn every_corruption_mode_is_a_typed_error() {
        let frame = sample_checkpoint().to_frame();

        // Wrong magic.
        let mut bad = frame.clone();
        bad[0] = b'X';
        assert!(matches!(
            EngineCheckpoint::from_frame(&bad),
            Err(CheckpointError::BadMagic { .. })
        ));

        // Wrong version.
        let mut bad = frame.clone();
        bad[4] = 99;
        assert!(matches!(
            EngineCheckpoint::from_frame(&bad),
            Err(CheckpointError::UnsupportedVersion { found: 99 })
        ));

        // Truncation at every cut: any prefix must fail with a typed
        // error, never panic.
        for cut in 0..frame.len() {
            let err = EngineCheckpoint::from_frame(&frame[..cut])
                .expect_err("truncated frame must not decode");
            assert!(
                matches!(
                    err,
                    CheckpointError::Truncated { .. } | CheckpointError::Malformed { .. }
                ),
                "cut at {cut} produced {err:?}"
            );
        }

        // Trailing garbage.
        let mut bad = frame.clone();
        bad.push(0);
        assert!(matches!(
            EngineCheckpoint::from_frame(&bad),
            Err(CheckpointError::TrailingBytes { extra: 1 })
        ));

        // Oversized declared length.
        let mut bad = frame.clone();
        bad[6..10].copy_from_slice(&(MAX_CHECKPOINT_PAYLOAD + 1).to_le_bytes());
        assert!(matches!(
            EngineCheckpoint::from_frame(&bad),
            Err(CheckpointError::FrameTooLarge { .. })
        ));

        // A corrupt interior length cannot trigger a huge allocation —
        // it must run into a typed error instead.
        let mut bad = frame.clone();
        let len = bad.len();
        bad[len - 8..].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(EngineCheckpoint::from_frame(&bad).is_err());
    }

    #[test]
    fn memory_store_heals_from_a_corrupt_newest_frame() {
        let mut store = MemoryCheckpointStore::new();
        assert!(store.load_latest().unwrap().is_none());

        let good = sample_checkpoint();
        store.save(&good).unwrap();
        let mut newer = sample_checkpoint();
        newer.ticks = 50;
        store.save(&newer).unwrap();
        // Newest wins while intact.
        assert_eq!(store.load_latest().unwrap().unwrap().ticks, 50);

        // A corrupt even-newer frame is skipped: the previous good frame
        // heals the store.
        store.push_raw(60, b"VVDCgarbage".to_vec());
        assert_eq!(store.load_latest().unwrap().unwrap().ticks, 50);

        // When *nothing* decodes, the newest error surfaces.
        let mut all_bad = MemoryCheckpointStore::new();
        all_bad.push_raw(1, vec![1, 2, 3]);
        assert!(all_bad.load_latest().is_err());
    }

    #[test]
    fn dir_store_round_trips_atomically_and_heals() {
        let dir =
            std::env::temp_dir().join(format!("vvd-checkpoint-store-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut store = DirCheckpointStore::new(&dir).unwrap();
        assert!(store.load_latest().unwrap().is_none());

        let mut checkpoint = sample_checkpoint();
        store.save(&checkpoint).unwrap();
        checkpoint.ticks = 99;
        store.save(&checkpoint).unwrap();
        assert_eq!(store.load_latest().unwrap().unwrap().ticks, 99);
        // No temp files linger after atomic writes.
        for entry in fs::read_dir(&dir).unwrap() {
            let name = entry.unwrap().file_name().to_string_lossy().into_owned();
            assert!(
                name.starts_with("ckpt-") && name.ends_with(".vvdc"),
                "unexpected file {name}"
            );
        }

        // Direct file loads surface typed errors...
        let newest = store.dir().join("ckpt-00000000000000000099.vvdc");
        let mut bytes = fs::read(&newest).unwrap();
        bytes.truncate(10);
        fs::write(&newest, &bytes).unwrap();
        assert!(matches!(
            load_checkpoint_file(&newest),
            Err(CheckpointError::Truncated { .. })
        ));
        // ...while load_latest heals to the previous good frame.
        assert_eq!(store.load_latest().unwrap().unwrap().ticks, 42);

        let _ = fs::remove_dir_all(&dir);
    }
}
