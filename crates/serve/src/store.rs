//! The sharded session store.
//!
//! A [`SessionStore`] owns every [`LinkSession`] of a workload and fans
//! per-tick work out over `std::thread::scope` workers: sessions are split
//! into `shards` contiguous chunks, each worker owns its chunk mutably for
//! the duration of one phase, and no two phases overlap.  Sessions never
//! share mutable state (trained networks are behind `Arc`s and predicted
//! through `&self`), so the shard count is invisible in every result — the
//! property the golden and property-based serve tests pin down at shard
//! counts 1, 2 and 8.

use crate::session::LinkSession;

/// Owns the sessions of a workload and runs phase closures over them on a
/// configurable number of shards.
pub struct SessionStore {
    sessions: Vec<LinkSession>,
}

impl SessionStore {
    /// A store over the given sessions (in session-id order).
    pub(crate) fn new(sessions: Vec<LinkSession>) -> Self {
        SessionStore { sessions }
    }

    /// Number of sessions.
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// `true` when the store holds no sessions.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// The sessions, in session-id order.
    pub fn sessions(&self) -> &[LinkSession] {
        &self.sessions
    }

    /// Mutable access for the planner (same order).
    pub(crate) fn sessions_mut(&mut self) -> &mut [LinkSession] {
        &mut self.sessions
    }

    /// Consumes the store, yielding the sessions in id order.
    pub fn into_sessions(self) -> Vec<LinkSession> {
        self.sessions
    }

    /// `true` once every session has streamed all of its packets.
    pub fn all_finished(&self) -> bool {
        self.sessions.iter().all(LinkSession::finished)
    }

    /// The earliest tick at which any unfinished session has a packet due,
    /// or `None` when the workload is drained.
    pub fn next_due_tick(&self) -> Option<u64> {
        self.sessions
            .iter()
            .filter(|s| !s.finished())
            .map(LinkSession::next_due)
            .min()
    }

    /// Runs `f` over every session, fanning contiguous chunks out over up
    /// to `shards` scoped worker threads.
    ///
    /// `f` must be pure per session (it may freely mutate *its* session) —
    /// with that, the shard count cannot change any result: each session
    /// is visited exactly once, by exactly one worker.
    pub(crate) fn for_each_sharded<F>(&mut self, shards: usize, f: F)
    where
        F: Fn(&mut LinkSession) + Sync,
    {
        let shards = shards.max(1).min(self.sessions.len().max(1));
        if shards <= 1 {
            for session in &mut self.sessions {
                f(session);
            }
            return;
        }
        let chunk_size = self.sessions.len().div_ceil(shards);
        std::thread::scope(|scope| {
            let f = &f;
            let handles: Vec<_> = self
                .sessions
                .chunks_mut(chunk_size)
                .map(|chunk| {
                    scope.spawn(move || {
                        for session in chunk {
                            f(session);
                        }
                    })
                })
                .collect();
            for handle in handles {
                handle.join().expect("serve shard worker panicked");
            }
        });
    }
}
