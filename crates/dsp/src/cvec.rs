//! Complex vector utilities.
//!
//! [`CVec`] is a thin newtype over `Vec<Complex>` providing the inner
//! products, norms and element-wise helpers that channel estimation needs:
//! the Hermitian inner product drives both the least-squares normal equations
//! (Eq. 4) and the mean-phase-offset estimator (Eq. 8), while energy/power
//! helpers are used for SNR scaling in the channel simulator.

use crate::complex::Complex;
use serde::{Deserialize, Serialize};
use std::ops::{Deref, DerefMut, Index, IndexMut};

/// A dense complex vector.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CVec(pub Vec<Complex>);

impl CVec {
    /// Creates a vector of `n` zeros.
    pub fn zeros(n: usize) -> Self {
        CVec(vec![Complex::ZERO; n])
    }

    /// Creates a vector from real samples (imaginary parts zero).
    pub fn from_real(xs: &[f64]) -> Self {
        CVec(xs.iter().map(|&x| Complex::from_real(x)).collect())
    }

    /// Creates a vector from interleaved `[re, im, re, im, ...]` pairs.
    ///
    /// Panics if the slice length is odd.
    pub fn from_interleaved(xs: &[f64]) -> Self {
        assert!(
            xs.len().is_multiple_of(2),
            "interleaved slice must have even length"
        );
        CVec(
            xs.chunks_exact(2)
                .map(|p| Complex::new(p[0], p[1]))
                .collect(),
        )
    }

    /// Flattens into interleaved `[re, im, ...]` representation.
    pub fn to_interleaved(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.len() * 2);
        for z in &self.0 {
            out.push(z.re);
            out.push(z.im);
        }
        out
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` when the vector has no elements.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Hermitian inner product `⟨self, other⟩ = Σ self[i] * conj(other[i])`.
    ///
    /// Panics if lengths differ.
    pub fn dot_h(&self, other: &CVec) -> Complex {
        assert_eq!(self.len(), other.len(), "dot_h: length mismatch");
        self.0
            .iter()
            .zip(other.0.iter())
            .map(|(a, b)| *a * b.conj())
            .sum()
    }

    /// Plain (non-conjugated) inner product `Σ self[i] * other[i]`.
    pub fn dot(&self, other: &CVec) -> Complex {
        assert_eq!(self.len(), other.len(), "dot: length mismatch");
        self.0
            .iter()
            .zip(other.0.iter())
            .map(|(a, b)| *a * *b)
            .sum()
    }

    /// Sum of squared magnitudes (signal energy).
    pub fn energy(&self) -> f64 {
        self.0.iter().map(|z| z.norm_sqr()).sum()
    }

    /// Average power (energy divided by length); 0 for the empty vector.
    pub fn power(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.energy() / self.len() as f64
        }
    }

    /// Euclidean (L2) norm.
    pub fn norm(&self) -> f64 {
        self.energy().sqrt()
    }

    /// Largest magnitude among the elements; 0 for the empty vector.
    pub fn max_abs(&self) -> f64 {
        self.0.iter().map(|z| z.abs()).fold(0.0, f64::max)
    }

    /// Element-wise scaling by a real factor.
    pub fn scale(&self, k: f64) -> CVec {
        CVec(self.0.iter().map(|z| z.scale(k)).collect())
    }

    /// Element-wise multiplication by a complex factor (e.g. a phasor for
    /// phase-offset correction).
    pub fn rotate(&self, phasor: Complex) -> CVec {
        CVec(self.0.iter().map(|z| *z * phasor).collect())
    }

    /// Element-wise addition. Panics if lengths differ.
    pub fn add(&self, other: &CVec) -> CVec {
        assert_eq!(self.len(), other.len(), "add: length mismatch");
        CVec(
            self.0
                .iter()
                .zip(other.0.iter())
                .map(|(a, b)| *a + *b)
                .collect(),
        )
    }

    /// Element-wise subtraction. Panics if lengths differ.
    pub fn sub(&self, other: &CVec) -> CVec {
        assert_eq!(self.len(), other.len(), "sub: length mismatch");
        CVec(
            self.0
                .iter()
                .zip(other.0.iter())
                .map(|(a, b)| *a - *b)
                .collect(),
        )
    }

    /// Mean squared difference against another vector of the same length.
    ///
    /// This is the per-element squared error summed over real and imaginary
    /// parts, matching the paper's MSE definition (Eq. 9) when averaged over
    /// packets and taps by the caller.
    pub fn squared_error(&self, other: &CVec) -> f64 {
        assert_eq!(self.len(), other.len(), "squared_error: length mismatch");
        self.0
            .iter()
            .zip(other.0.iter())
            .map(|(a, b)| (*a - *b).norm_sqr())
            .sum()
    }

    /// Zero-pads (or truncates) to the requested length.
    pub fn resized(&self, n: usize) -> CVec {
        let mut v = self.0.clone();
        v.resize(n, Complex::ZERO);
        CVec(v)
    }

    /// Conjugates every element.
    pub fn conj(&self) -> CVec {
        CVec(self.0.iter().map(|z| z.conj()).collect())
    }

    /// Returns the index of the element with the largest magnitude, or `None`
    /// for an empty vector.
    pub fn argmax_abs(&self) -> Option<usize> {
        if self.is_empty() {
            return None;
        }
        let mut best = 0usize;
        let mut best_v = self.0[0].norm_sqr();
        for (i, z) in self.0.iter().enumerate().skip(1) {
            let v = z.norm_sqr();
            if v > best_v {
                best_v = v;
                best = i;
            }
        }
        Some(best)
    }

    /// Borrows the underlying slice.
    pub fn as_slice(&self) -> &[Complex] {
        &self.0
    }
}

impl Deref for CVec {
    type Target = Vec<Complex>;
    fn deref(&self) -> &Self::Target {
        &self.0
    }
}

impl DerefMut for CVec {
    fn deref_mut(&mut self) -> &mut Self::Target {
        &mut self.0
    }
}

impl Index<usize> for CVec {
    type Output = Complex;
    fn index(&self, i: usize) -> &Complex {
        &self.0[i]
    }
}

impl IndexMut<usize> for CVec {
    fn index_mut(&mut self, i: usize) -> &mut Complex {
        &mut self.0[i]
    }
}

impl From<Vec<Complex>> for CVec {
    fn from(v: Vec<Complex>) -> Self {
        CVec(v)
    }
}

impl FromIterator<Complex> for CVec {
    fn from_iter<T: IntoIterator<Item = Complex>>(iter: T) -> Self {
        CVec(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interleaved_roundtrip() {
        let v = CVec(vec![Complex::new(1.0, 2.0), Complex::new(-0.5, 0.25)]);
        let flat = v.to_interleaved();
        assert_eq!(flat, vec![1.0, 2.0, -0.5, 0.25]);
        assert_eq!(CVec::from_interleaved(&flat), v);
    }

    #[test]
    fn hermitian_dot_of_self_is_energy() {
        let v = CVec(vec![Complex::new(1.0, 2.0), Complex::new(3.0, -1.0)]);
        let d = v.dot_h(&v);
        assert!((d.re - v.energy()).abs() < 1e-12);
        assert!(d.im.abs() < 1e-12);
    }

    #[test]
    fn energy_power_norm() {
        let v = CVec(vec![Complex::new(3.0, 4.0), Complex::ZERO]);
        assert_eq!(v.energy(), 25.0);
        assert_eq!(v.power(), 12.5);
        assert_eq!(v.norm(), 5.0);
        assert_eq!(v.max_abs(), 5.0);
    }

    #[test]
    fn rotate_preserves_energy() {
        let v = CVec(vec![Complex::new(1.0, 1.0), Complex::new(0.2, -0.4)]);
        let r = v.rotate(Complex::cis(0.9));
        assert!((r.energy() - v.energy()).abs() < 1e-12);
    }

    #[test]
    fn squared_error_zero_for_identical() {
        let v = CVec::from_real(&[1.0, -2.0, 3.0]);
        assert_eq!(v.squared_error(&v), 0.0);
    }

    #[test]
    fn argmax_abs_finds_peak() {
        let v = CVec(vec![
            Complex::new(0.1, 0.0),
            Complex::new(0.0, -2.0),
            Complex::new(1.0, 1.0),
        ]);
        assert_eq!(v.argmax_abs(), Some(1));
        assert_eq!(CVec::zeros(0).argmax_abs(), None);
    }

    #[test]
    fn resized_pads_and_truncates() {
        let v = CVec::from_real(&[1.0, 2.0]);
        assert_eq!(v.resized(4).len(), 4);
        assert_eq!(v.resized(4)[3], Complex::ZERO);
        assert_eq!(v.resized(1).len(), 1);
    }

    #[test]
    #[should_panic]
    fn dot_length_mismatch_panics() {
        let a = CVec::zeros(2);
        let b = CVec::zeros(3);
        let _ = a.dot(&b);
    }
}
