//! The shared worker-budget policy of every parallel fan-out in the
//! workspace.
//!
//! All parallelism in this repository is *deterministic*: workers only ever
//! process disjoint work items (estimators, packets, sessions, GEMM row
//! chunks) whose per-item arithmetic is independent of the worker count, so
//! results are bit-identical whether a fan-out runs on 1 thread or 64.
//! [`worker_budget`] is the single knob that sizes those fan-outs:
//!
//! * by default it follows [`std::thread::available_parallelism`];
//! * setting the `VVD_WORKERS` environment variable to a positive integer
//!   overrides it, which is how CI runs the whole test suite at fixed
//!   worker counts (1 and 4) to enforce the
//!   any-worker-count-bit-identical invariant on every push.
//!
//! Cross-process serving (`vvd-net`) adds a second axis: `VVD_PROCS`
//! sizes the number of worker *processes* a coordinator spawns
//! ([`proc_budget`]), and [`per_process_worker_budget`] resolves the
//! `VVD_PROCS` × `VVD_WORKERS` interplay — an explicit `VVD_WORKERS` is
//! honoured per process, otherwise the hardware parallelism is divided
//! across the processes so a cluster does not oversubscribe the machine.
//!
//! This module is the *single* ambient-environment site for the
//! worker-budget concern (the process axis included):
//! `vvd_nn::kernels::hardware_workers` delegates here, and the
//! `ambient-env` rule of `vvd-analyze` rejects any other `VVD_WORKERS` /
//! `VVD_PROCS` read introduced elsewhere.

/// Name of the environment variable overriding the worker budget.
pub const WORKERS_ENV: &str = "VVD_WORKERS";

/// Name of the environment variable sizing cross-process serve clusters
/// (`vvd-net`): the number of worker *processes* a coordinator spawns.
pub const PROCS_ENV: &str = "VVD_PROCS";

/// Name of the environment variable enabling periodic serve-session
/// checkpoints: a positive integer is the checkpoint interval in engine
/// ticks.  Unset (or non-positive/unparsable) means no ambient checkpoint
/// policy — checkpointing is opt-in, like multi-process serving.
pub const CHECKPOINT_TICKS_ENV: &str = "VVD_CHECKPOINT_TICKS";

/// Name of the environment variable gating the serve engine's pipelined
/// tick execution (overlapping next-tick DSP synthesis with the current
/// tick's batched inference).  The pipeline is **on by default**; set the
/// variable to `0`, `false` or `off` to force strictly sequential ticks.
/// Pipelining is pure scheduling — it cannot change any result bit — so
/// the knob exists for A/B timing and for pinning CI matrix legs, not for
/// correctness.
pub const PIPELINE_ENV: &str = "VVD_PIPELINE";

/// Name of the environment variable mounting the on-disk GEMM autotune
/// layer: when set to a directory path, tuned block-size winners are
/// persisted there (one tiny file per shape class) and re-loaded by later
/// processes, so a fleet of worker processes sweeps each shape class once
/// instead of once per process.  Unset means in-memory memoization only.
pub const AUTOTUNE_DIR_ENV: &str = "VVD_AUTOTUNE_DIR";

/// `VVD_WORKERS` when explicitly set to a positive integer.
fn explicit_workers() -> Option<usize> {
    std::env::var(WORKERS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
}

/// The number of worker threads parallel fan-outs should size themselves
/// for: `VVD_WORKERS` when set to a positive integer, the available
/// hardware parallelism otherwise (1 when even that is unknown).
pub fn worker_budget() -> usize {
    explicit_workers().unwrap_or_else(hardware_parallelism)
}

/// The number of worker *processes* a cross-process serve cluster should
/// spawn: `VVD_PROCS` when set to a positive integer, 1 otherwise.
/// Multi-process serving is opt-in — a plain run stays single-process.
pub fn proc_budget() -> usize {
    match std::env::var(PROCS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
    {
        Some(n) if n >= 1 => n,
        _ => 1,
    }
}

/// The per-process thread budget of a cluster of `procs` worker processes
/// — the `VVD_PROCS` × `VVD_WORKERS` interplay resolved in one place:
///
/// * with `VVD_WORKERS` explicitly set, every process honours it verbatim
///   (CI's worker matrix pins *per-process* shard counts, processes
///   included — total threads are then `VVD_PROCS` × `VVD_WORKERS`);
/// * otherwise the hardware parallelism is divided evenly across the
///   `procs` processes (min 1 each), so a cluster never oversubscribes
///   the machine the way `procs` full [`worker_budget`]s would.
pub fn per_process_worker_budget(procs: usize) -> usize {
    match explicit_workers() {
        Some(n) => n,
        None => (hardware_parallelism() / procs.max(1)).max(1),
    }
}

/// The ambient checkpoint-interval budget of serving layers:
/// `VVD_CHECKPOINT_TICKS` when set to a positive integer (the interval in
/// engine ticks between checkpoint frames), `None` otherwise.
///
/// Like the worker budget this is an *environment policy*, so it lives in
/// this module — the single ambient-environment site the `ambient-env`
/// lint of `vvd-analyze` permits.  Serving layers treat `None` as
/// "checkpointing off": a plain run writes no frames.
pub fn checkpoint_interval() -> Option<u64> {
    std::env::var(CHECKPOINT_TICKS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|&n| n >= 1)
}

/// Whether the serve engine's pipelined tick execution is enabled:
/// `true` unless `VVD_PIPELINE` is explicitly set to `0`, `false` or
/// `off` (case-insensitive).  Any other value — including unset — keeps
/// the pipeline on, because pipelining is pure scheduling and cannot
/// change results; the off switch exists for A/B timing comparisons and
/// CI matrix legs.
pub fn pipeline_enabled() -> bool {
    match std::env::var(PIPELINE_ENV) {
        Ok(v) => {
            let v = v.trim().to_ascii_lowercase();
            !matches!(v.as_str(), "0" | "false" | "off")
        }
        Err(_) => true,
    }
}

/// The optional on-disk GEMM autotune directory: `VVD_AUTOTUNE_DIR` when
/// set to a non-empty path, `None` otherwise.  Like every other ambient
/// policy this is read *here* — the single environment site the
/// `ambient-env` lint of `vvd-analyze` permits — and consumed by
/// `vvd_nn::kernels::autotune`.
pub fn autotune_dir() -> Option<std::path::PathBuf> {
    std::env::var(AUTOTUNE_DIR_ENV)
        .ok()
        .map(|v| v.trim().to_string())
        .filter(|v| !v.is_empty())
        .map(std::path::PathBuf::from)
}

fn hardware_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_is_at_least_one() {
        // Whatever the environment says, a budget of zero would deadlock
        // every fan-out.
        assert!(worker_budget() >= 1);
    }

    #[test]
    fn proc_budget_defaults_to_single_process() {
        // Multi-process serving is opt-in via VVD_PROCS; the test
        // environment does not set it (and must not — ambient env writes
        // would race other tests), so the default must be 1 process.
        assert!(proc_budget() >= 1);
    }

    #[test]
    fn checkpoint_interval_is_opt_in() {
        // The test environment does not set VVD_CHECKPOINT_TICKS (and must
        // not — ambient env writes would race other tests), so the default
        // policy is "no checkpointing"; when an operator *does* set it,
        // the interval is at least one tick.
        match checkpoint_interval() {
            None => {}
            Some(n) => assert!(n >= 1),
        }
    }

    #[test]
    fn pipeline_defaults_on() {
        // The test environment does not set VVD_PIPELINE (and must not —
        // ambient env writes would race other tests), so the default is
        // "pipeline on" unless CI's matrix pinned it off; either way the
        // call must not panic and must return a plain bool.
        let _ = pipeline_enabled();
    }

    #[test]
    fn autotune_dir_is_opt_in() {
        // VVD_AUTOTUNE_DIR unset (the test default) means no disk layer;
        // when set, the path must be non-empty.
        if let Some(dir) = autotune_dir() {
            assert!(!dir.as_os_str().is_empty());
        }
    }

    #[test]
    fn per_process_budget_never_oversubscribes_to_zero() {
        for procs in [0usize, 1, 2, 64, 10_000] {
            assert!(per_process_worker_budget(procs) >= 1);
        }
        // Dividing across more processes never *increases* the per-process
        // budget.
        assert!(per_process_worker_budget(64) <= per_process_worker_budget(1));
    }
}
