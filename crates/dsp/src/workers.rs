//! The shared worker-budget policy of every parallel fan-out in the
//! workspace.
//!
//! All parallelism in this repository is *deterministic*: workers only ever
//! process disjoint work items (estimators, packets, sessions, GEMM row
//! chunks) whose per-item arithmetic is independent of the worker count, so
//! results are bit-identical whether a fan-out runs on 1 thread or 64.
//! [`worker_budget`] is the single knob that sizes those fan-outs:
//!
//! * by default it follows [`std::thread::available_parallelism`];
//! * setting the `VVD_WORKERS` environment variable to a positive integer
//!   overrides it, which is how CI runs the whole test suite at fixed
//!   worker counts (1 and 4) to enforce the
//!   any-worker-count-bit-identical invariant on every push.
//!
//! This module is the *single* ambient-environment site for the
//! worker-budget concern: `vvd_nn::kernels::hardware_workers` delegates
//! here, and the `ambient-env` rule of `vvd-analyze` rejects any other
//! `VVD_WORKERS` read introduced elsewhere.

/// Name of the environment variable overriding the worker budget.
pub const WORKERS_ENV: &str = "VVD_WORKERS";

/// The number of worker threads parallel fan-outs should size themselves
/// for: `VVD_WORKERS` when set to a positive integer, the available
/// hardware parallelism otherwise (1 when even that is unknown).
pub fn worker_budget() -> usize {
    match std::env::var(WORKERS_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
    {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_is_at_least_one() {
        // Whatever the environment says, a budget of zero would deadlock
        // every fan-out.
        assert!(worker_budget() >= 1);
    }
}
