//! Complex FIR filters.
//!
//! Both the wireless channel (tapped delay line, Eq. 2–3) and its estimates
//! are represented as sample-spaced complex FIR filters; the zero-forcing
//! equalizer is yet another FIR filter.  [`FirFilter`] wraps the tap vector
//! with the filtering/normalisation helpers shared by those users.

use crate::complex::Complex;
use crate::convolution::{convolve, convolve_full};
use crate::cvec::CVec;
use serde::{Deserialize, Serialize};

/// A finite impulse response filter with complex taps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FirFilter {
    taps: CVec,
}

impl FirFilter {
    /// Creates a filter from its tap vector.
    pub fn new(taps: CVec) -> Self {
        FirFilter { taps }
    }

    /// Creates a filter from a slice of taps.
    pub fn from_taps(taps: &[Complex]) -> Self {
        FirFilter {
            taps: CVec(taps.to_vec()),
        }
    }

    /// The identity filter (a single unit tap).
    pub fn identity() -> Self {
        FirFilter {
            taps: CVec(vec![Complex::ONE]),
        }
    }

    /// A pure delay of `d` samples (unit tap at index `d`).
    pub fn delay(d: usize) -> Self {
        let mut taps = CVec::zeros(d + 1);
        taps[d] = Complex::ONE;
        FirFilter { taps }
    }

    /// Number of taps.
    pub fn len(&self) -> usize {
        self.taps.len()
    }

    /// `true` if the filter has no taps.
    pub fn is_empty(&self) -> bool {
        self.taps.is_empty()
    }

    /// Borrow the tap vector.
    pub fn taps(&self) -> &CVec {
        &self.taps
    }

    /// Consumes the filter and returns the tap vector.
    pub fn into_taps(self) -> CVec {
        self.taps
    }

    /// Filters an input block, returning the full convolution
    /// (`input.len() + taps.len() - 1` samples).
    pub fn filter_full(&self, input: &[Complex]) -> CVec {
        convolve_full(input, &self.taps)
    }

    /// Filters an input block and returns `input.len()` samples aligned on
    /// the tap at index `cursor` (the "main" tap).  This mirrors how the
    /// equalized signal is re-aligned after zero-forcing equalization where
    /// `cursor` pre-cursor taps were allowed.
    pub fn filter_aligned(&self, input: &[Complex], cursor: usize) -> CVec {
        convolve(input, &self.taps, cursor)
    }

    /// Total tap energy `Σ|h_l|²`.
    pub fn energy(&self) -> f64 {
        self.taps.energy()
    }

    /// Index of the strongest tap, or `None` if the filter is empty.
    pub fn dominant_tap(&self) -> Option<usize> {
        self.taps.argmax_abs()
    }

    /// Returns a copy normalised to unit energy; the all-zero filter is
    /// returned unchanged.
    pub fn normalized(&self) -> FirFilter {
        let e = self.energy();
        if e == 0.0 {
            return self.clone();
        }
        FirFilter {
            taps: self.taps.scale(1.0 / e.sqrt()),
        }
    }

    /// Scales every tap by a real gain.
    pub fn scaled(&self, k: f64) -> FirFilter {
        FirFilter {
            taps: self.taps.scale(k),
        }
    }

    /// Rotates every tap by a common phasor (mean phase shift).
    pub fn rotated(&self, phasor: Complex) -> FirFilter {
        FirFilter {
            taps: self.taps.rotate(phasor),
        }
    }

    /// Cascades two filters (convolution of their impulse responses).
    pub fn cascade(&self, other: &FirFilter) -> FirFilter {
        FirFilter {
            taps: convolve_full(&self.taps, &other.taps),
        }
    }

    /// Zero-pads or truncates the tap vector to `n` taps.
    pub fn resized(&self, n: usize) -> FirFilter {
        FirFilter {
            taps: self.taps.resized(n),
        }
    }
}

impl From<CVec> for FirFilter {
    fn from(taps: CVec) -> Self {
        FirFilter { taps }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64, im: f64) -> Complex {
        Complex::new(re, im)
    }

    #[test]
    fn identity_filter_passes_through() {
        let x = [c(1.0, 2.0), c(-0.5, 0.25), c(3.0, 0.0)];
        let f = FirFilter::identity();
        assert_eq!(f.filter_full(&x).as_slice(), &x);
        assert_eq!(f.filter_aligned(&x, 0).as_slice(), &x);
    }

    #[test]
    fn delay_filter_shifts_and_aligns_back() {
        let x = [c(1.0, 0.0), c(2.0, 0.0), c(3.0, 0.0)];
        let f = FirFilter::delay(2);
        let full = f.filter_full(&x);
        assert_eq!(full.len(), 5);
        assert_eq!(full[2], c(1.0, 0.0));
        // Aligning on the delayed tap recovers the input.
        let aligned = f.filter_aligned(&x, 2);
        assert!(aligned.squared_error(&CVec(x.to_vec())) < 1e-24);
    }

    #[test]
    fn cascade_equals_sequential_filtering() {
        let x = [c(1.0, 0.5), c(-2.0, 1.0), c(0.25, -0.75), c(3.0, 0.0)];
        let f1 = FirFilter::from_taps(&[c(0.5, 0.0), c(0.0, 1.0)]);
        let f2 = FirFilter::from_taps(&[c(1.0, 0.0), c(-0.25, 0.25), c(0.0, 0.5)]);
        let seq = f2.filter_full(f1.filter_full(&x).as_slice());
        let cascaded = f1.cascade(&f2).filter_full(&x);
        assert!(seq.squared_error(&cascaded) < 1e-22);
    }

    #[test]
    fn normalized_has_unit_energy() {
        let f = FirFilter::from_taps(&[c(3.0, 0.0), c(0.0, 4.0)]);
        assert!((f.normalized().energy() - 1.0).abs() < 1e-12);
        // Zero filter normalisation is a no-op (no NaNs).
        let z = FirFilter::from_taps(&[Complex::ZERO, Complex::ZERO]);
        assert_eq!(z.normalized(), z);
    }

    #[test]
    fn dominant_tap_index() {
        let f = FirFilter::from_taps(&[c(0.1, 0.0), c(0.0, 0.9), c(0.5, 0.0)]);
        assert_eq!(f.dominant_tap(), Some(1));
    }

    #[test]
    fn rotation_preserves_energy_and_dominant_tap() {
        let f = FirFilter::from_taps(&[c(0.1, 0.0), c(0.0, 0.9), c(0.5, 0.0)]);
        let r = f.rotated(Complex::cis(0.77));
        assert!((r.energy() - f.energy()).abs() < 1e-12);
        assert_eq!(r.dominant_tap(), f.dominant_tap());
    }

    #[test]
    fn resize_pads_with_zeros() {
        let f = FirFilter::from_taps(&[c(1.0, 0.0)]);
        let g = f.resized(4);
        assert_eq!(g.len(), 4);
        assert_eq!(g.taps()[3], Complex::ZERO);
    }
}
