//! Sample-rate conversion helpers.
//!
//! The measurement setup in the paper samples at 10 MHz on the USRP and
//! downsamples to 8 MHz in GNU Radio; the PHY itself runs at 2 Mchip/s so the
//! receiver works with an integer number of samples per chip.  The
//! reproduction keeps everything at an integer samples-per-chip ratio, so
//! only integer-factor decimation/expansion is required.

use crate::complex::Complex;
use crate::cvec::CVec;

/// Keeps every `factor`-th sample starting at `phase`.
///
/// # Panics
/// Panics if `factor == 0` or `phase >= factor`.
pub fn decimate(x: &[Complex], factor: usize, phase: usize) -> CVec {
    assert!(factor > 0, "decimate: zero factor");
    assert!(phase < factor, "decimate: phase out of range");
    CVec(x.iter().skip(phase).step_by(factor).copied().collect())
}

/// Zero-stuffing expansion by an integer factor: inserts `factor - 1` zeros
/// after every input sample.
///
/// # Panics
/// Panics if `factor == 0`.
pub fn expand(x: &[Complex], factor: usize) -> CVec {
    assert!(factor > 0, "expand: zero factor");
    let mut out = CVec::zeros(x.len() * factor);
    for (i, &v) in x.iter().enumerate() {
        out[i * factor] = v;
    }
    out
}

/// Repeats each sample `factor` times (sample-and-hold interpolation).
///
/// Used to hold a chip value over all baseband samples of the chip before
/// pulse shaping.
pub fn hold(x: &[Complex], factor: usize) -> CVec {
    assert!(factor > 0, "hold: zero factor");
    let mut out = CVec::zeros(x.len() * factor);
    for (i, &v) in x.iter().enumerate() {
        for k in 0..factor {
            out[i * factor + k] = v;
        }
    }
    out
}

/// Averages consecutive groups of `factor` samples (a simple anti-alias
/// decimator used by the depth-image downsampling pipeline as well).
pub fn average_decimate(x: &[Complex], factor: usize) -> CVec {
    assert!(factor > 0, "average_decimate: zero factor");
    let n = x.len() / factor;
    let mut out = CVec::zeros(n);
    for i in 0..n {
        let mut acc = Complex::ZERO;
        for k in 0..factor {
            acc += x[i * factor + k];
        }
        out[i] = acc / factor as f64;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|i| Complex::new(i as f64, -(i as f64)))
            .collect()
    }

    #[test]
    fn decimate_picks_every_kth() {
        let x = ramp(10);
        let y = decimate(&x, 3, 0);
        assert_eq!(y.len(), 4);
        assert_eq!(y[1].re, 3.0);
        let y2 = decimate(&x, 3, 2);
        assert_eq!(y2[0].re, 2.0);
    }

    #[test]
    fn expand_then_decimate_is_identity() {
        let x = ramp(7);
        let y = decimate(&expand(&x, 4), 4, 0);
        assert_eq!(y.as_slice(), &x[..]);
    }

    #[test]
    fn hold_then_average_decimate_is_identity() {
        let x = ramp(5);
        let y = average_decimate(&hold(&x, 4), 4);
        for (a, b) in y.iter().zip(x.iter()) {
            assert!((*a - *b).abs() < 1e-12);
        }
    }

    #[test]
    fn hold_repeats_values() {
        let x = ramp(2);
        let y = hold(&x, 3);
        assert_eq!(y.len(), 6);
        assert_eq!(y[0], y[2]);
        assert_eq!(y[3], y[5]);
        assert_ne!(y[2], y[3]);
    }

    #[test]
    #[should_panic]
    fn zero_factor_panics() {
        let _ = decimate(&ramp(4), 0, 0);
    }
}
