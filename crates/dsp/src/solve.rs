//! Complex linear-system and least-squares solvers.
//!
//! The paper's estimators all reduce to one of two operations:
//!
//! * solving the least-squares normal equations
//!   `ĥ = (XᴴX)⁻¹ Xᴴ y`  (Eq. 4, channel estimation) and
//!   `ĉ = (HᴴH)⁻¹ Hᴴ u`  (Eq. 7, zero-forcing equalizer design), and
//! * inverting small autoregressive covariance systems for the Kalman filter
//!   (Yule–Walker, Eq. 14).
//!
//! Both are handled by a dense Gaussian elimination with partial pivoting on
//! complex matrices.  Matrix sizes never exceed a few tens of taps, so the
//! cubic cost is negligible and numerical behaviour is easy to reason about.

use crate::cmatrix::CMatrix;
use crate::complex::Complex;
use crate::cvec::CVec;

/// Errors returned by the linear solvers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// The coefficient matrix is (numerically) singular: no pivot with
    /// magnitude above the tolerance could be found.
    Singular,
    /// The dimensions of the system are inconsistent.
    DimensionMismatch,
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::Singular => write!(f, "matrix is singular to working precision"),
            SolveError::DimensionMismatch => write!(f, "inconsistent system dimensions"),
        }
    }
}

impl std::error::Error for SolveError {}

/// Relative pivot tolerance used to declare singularity.
const PIVOT_TOL: f64 = 1e-13;

/// Solves the square complex system `A x = b` by Gaussian elimination with
/// partial pivoting.
///
/// # Errors
/// Returns [`SolveError::DimensionMismatch`] if `A` is not square or `b` has
/// the wrong length, and [`SolveError::Singular`] if no acceptable pivot can
/// be found.
pub fn solve_linear(a: &CMatrix, b: &CVec) -> Result<CVec, SolveError> {
    let n = a.rows();
    if a.cols() != n || b.len() != n {
        return Err(SolveError::DimensionMismatch);
    }
    if n == 0 {
        return Ok(CVec::zeros(0));
    }

    // Augmented working copy.
    let mut m: Vec<Vec<Complex>> = (0..n)
        .map(|i| {
            let mut row: Vec<Complex> = (0..n).map(|j| a[(i, j)]).collect();
            row.push(b[i]);
            row
        })
        .collect();

    let scale = a.max_abs().max(1e-300);

    for col in 0..n {
        // Partial pivoting: pick the row with the largest magnitude in `col`.
        let mut pivot_row = col;
        let mut pivot_mag = m[col][col].abs();
        for (r, row) in m.iter().enumerate().skip(col + 1) {
            let mag = row[col].abs();
            if mag > pivot_mag {
                pivot_mag = mag;
                pivot_row = r;
            }
        }
        if pivot_mag <= PIVOT_TOL * scale {
            return Err(SolveError::Singular);
        }
        m.swap(col, pivot_row);

        let pivot = m[col][col];
        let (pivot_rows, elim_rows) = m.split_at_mut(col + 1);
        let pivot_row_vals = &pivot_rows[col];
        for row in elim_rows {
            let factor = row[col] / pivot;
            if factor == Complex::ZERO {
                continue;
            }
            for (dst, &src) in row[col..=n].iter_mut().zip(&pivot_row_vals[col..=n]) {
                *dst -= factor * src;
            }
        }
    }

    // Back substitution.
    let mut x = CVec::zeros(n);
    for i in (0..n).rev() {
        let mut acc = m[i][n];
        for j in (i + 1)..n {
            acc -= m[i][j] * x[j];
        }
        x[i] = acc / m[i][i];
    }
    Ok(x)
}

/// Solves the (possibly overdetermined) least-squares problem
/// `min ‖A x − b‖²` via the normal equations `AᴴA x = Aᴴ b`.
///
/// This mirrors the paper's Eq. 4/7 exactly (the authors also use the
/// normal-equation form).  For the well-conditioned convolution matrices that
/// arise from pseudo-noise chip sequences this is numerically unproblematic.
///
/// # Errors
/// Returns [`SolveError::DimensionMismatch`] when `b.len() != A.rows()` and
/// [`SolveError::Singular`] when the Gram matrix cannot be inverted (e.g. if
/// the reference signal is all zeros or shorter than the requested number of
/// taps).
pub fn least_squares(a: &CMatrix, b: &CVec) -> Result<CVec, SolveError> {
    if b.len() != a.rows() {
        return Err(SolveError::DimensionMismatch);
    }
    let gram = a.gram();
    let rhs = a.hermitian_matvec(b);
    solve_linear(&gram, &rhs)
}

/// Inverts a square complex matrix by solving against the identity columns.
///
/// Used by the Kalman filter's gain computation `P (P + U)⁻¹`.
pub fn invert(a: &CMatrix) -> Result<CMatrix, SolveError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(SolveError::DimensionMismatch);
    }
    let mut out = CMatrix::zeros(n, n);
    for j in 0..n {
        let mut e = CVec::zeros(n);
        e[j] = Complex::ONE;
        let col = solve_linear(a, &e)?;
        for i in 0..n {
            out[(i, j)] = col[i];
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64, im: f64) -> Complex {
        Complex::new(re, im)
    }

    #[test]
    fn solves_real_system() {
        // [2 1; 1 3] x = [5; 10]  => x = [1; 3]
        let a = CMatrix::from_rows(&[
            vec![c(2.0, 0.0), c(1.0, 0.0)],
            vec![c(1.0, 0.0), c(3.0, 0.0)],
        ]);
        let b = CVec::from_real(&[5.0, 10.0]);
        let x = solve_linear(&a, &b).unwrap();
        assert!((x[0] - c(1.0, 0.0)).abs() < 1e-12);
        assert!((x[1] - c(3.0, 0.0)).abs() < 1e-12);
    }

    #[test]
    fn solves_complex_system_and_verifies_residual() {
        let a = CMatrix::from_rows(&[
            vec![c(1.0, 1.0), c(2.0, -1.0), c(0.0, 0.5)],
            vec![c(0.0, 2.0), c(1.0, 0.0), c(1.0, 1.0)],
            vec![c(3.0, 0.0), c(0.5, 0.5), c(2.0, -2.0)],
        ]);
        let x_true = CVec(vec![c(1.0, -1.0), c(0.5, 2.0), c(-1.0, 0.25)]);
        let b = a.matvec(&x_true);
        let x = solve_linear(&a, &b).unwrap();
        assert!(x.squared_error(&x_true) < 1e-20);
    }

    #[test]
    fn singular_matrix_is_detected() {
        let a = CMatrix::from_rows(&[
            vec![c(1.0, 0.0), c(2.0, 0.0)],
            vec![c(2.0, 0.0), c(4.0, 0.0)],
        ]);
        let b = CVec::from_real(&[1.0, 2.0]);
        assert_eq!(solve_linear(&a, &b), Err(SolveError::Singular));
    }

    #[test]
    fn dimension_mismatch_is_detected() {
        let a = CMatrix::zeros(2, 3);
        let b = CVec::zeros(2);
        assert_eq!(solve_linear(&a, &b), Err(SolveError::DimensionMismatch));
        assert_eq!(
            least_squares(&a, &CVec::zeros(3)),
            Err(SolveError::DimensionMismatch)
        );
    }

    #[test]
    fn least_squares_recovers_exact_solution_of_tall_system() {
        // Overdetermined but consistent system.
        let a = CMatrix::from_rows(&[
            vec![c(1.0, 0.0), c(0.0, 1.0)],
            vec![c(2.0, 0.0), c(1.0, 0.0)],
            vec![c(0.0, -1.0), c(1.0, 1.0)],
            vec![c(1.0, 1.0), c(0.5, 0.0)],
        ]);
        let x_true = CVec(vec![c(0.7, -0.2), c(1.5, 0.5)]);
        let b = a.matvec(&x_true);
        let x = least_squares(&a, &b).unwrap();
        assert!(x.squared_error(&x_true) < 1e-18);
    }

    #[test]
    fn least_squares_projects_noisy_observations() {
        // With noise the LS residual must be orthogonal to the column space:
        // Aᴴ (b - A x̂) ≈ 0.
        let a = CMatrix::from_rows(&[
            vec![c(1.0, 0.0), c(0.0, 1.0)],
            vec![c(2.0, 0.0), c(1.0, 0.0)],
            vec![c(0.0, -1.0), c(1.0, 1.0)],
            vec![c(1.0, 1.0), c(0.5, 0.0)],
        ]);
        let x_true = CVec(vec![c(0.7, -0.2), c(1.5, 0.5)]);
        let mut b = a.matvec(&x_true);
        // deterministic "noise"
        b[0] += c(0.01, -0.02);
        b[2] += c(-0.015, 0.01);
        let x = least_squares(&a, &b).unwrap();
        let residual = b.sub(&a.matvec(&x));
        let grad = a.hermitian_matvec(&residual);
        assert!(grad.norm() < 1e-10);
    }

    #[test]
    fn invert_times_original_is_identity() {
        let a = CMatrix::from_rows(&[
            vec![c(2.0, 1.0), c(0.0, -1.0)],
            vec![c(1.0, 0.0), c(3.0, 2.0)],
        ]);
        let inv = invert(&a).unwrap();
        let prod = a.matmul(&inv);
        let eye = CMatrix::identity(2);
        assert!(prod.sub(&eye).frobenius_norm() < 1e-12);
    }

    #[test]
    fn empty_system_is_ok() {
        let a = CMatrix::zeros(0, 0);
        let b = CVec::zeros(0);
        assert_eq!(solve_linear(&a, &b).unwrap().len(), 0);
    }
}
