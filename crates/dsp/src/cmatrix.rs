//! Dense complex matrices.
//!
//! Channel estimation in the paper only ever manipulates small dense
//! matrices: the `(N+M-1) × N` convolution matrix of the pilot samples
//! (Eq. 5), its `N × N` Gram matrix, and the `p × p` autoregressive state
//! matrices of the Kalman filter (p ≤ 20).  A simple row-major `Vec<Complex>`
//! backing store with O(n³) multiply/solve is more than adequate and keeps
//! the substrate auditable.

use crate::complex::Complex;
use crate::cvec::CVec;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense, row-major complex matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Complex>,
}

impl CMatrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CMatrix {
            rows,
            cols,
            data: vec![Complex::ZERO; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = CMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Complex::ONE;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<Complex>) -> Self {
        assert_eq!(data.len(), rows * cols, "from_vec: dimension mismatch");
        CMatrix { rows, cols, data }
    }

    /// Creates a matrix from nested row slices.
    pub fn from_rows(rows: &[Vec<Complex>]) -> Self {
        let r = rows.len();
        let c = if r == 0 { 0 } else { rows[0].len() };
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "from_rows: ragged rows");
            data.extend_from_slice(row);
        }
        CMatrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Creates a diagonal matrix from the given diagonal entries.
    pub fn diag(d: &[Complex]) -> Self {
        let n = d.len();
        let mut m = CMatrix::zeros(n, n);
        for (i, &v) in d.iter().enumerate() {
            m[(i, i)] = v;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable access to the row-major backing slice.
    pub fn data(&self) -> &[Complex] {
        &self.data
    }

    /// Returns row `i` as a [`CVec`].
    pub fn row(&self, i: usize) -> CVec {
        assert!(i < self.rows);
        CVec(self.data[i * self.cols..(i + 1) * self.cols].to_vec())
    }

    /// Returns column `j` as a [`CVec`].
    pub fn col(&self, j: usize) -> CVec {
        assert!(j < self.cols);
        CVec((0..self.rows).map(|i| self[(i, j)]).collect())
    }

    /// Hermitian (conjugate) transpose.
    pub fn hermitian(&self) -> CMatrix {
        let mut out = CMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)].conj();
            }
        }
        out
    }

    /// Plain transpose (no conjugation).
    pub fn transpose(&self) -> CMatrix {
        let mut out = CMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Matrix–matrix product `self * rhs`.
    ///
    /// Panics if `self.cols != rhs.rows`.
    pub fn matmul(&self, rhs: &CMatrix) -> CMatrix {
        assert_eq!(self.cols, rhs.rows, "matmul: inner dimension mismatch");
        let mut out = CMatrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == Complex::ZERO {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        out
    }

    /// Matrix–vector product `self * v`.
    ///
    /// Panics if `self.cols != v.len()`.
    pub fn matvec(&self, v: &CVec) -> CVec {
        assert_eq!(self.cols, v.len(), "matvec: dimension mismatch");
        let mut out = CVec::zeros(self.rows);
        for i in 0..self.rows {
            let mut acc = Complex::ZERO;
            let base = i * self.cols;
            for j in 0..self.cols {
                acc += self.data[base + j] * v[j];
            }
            out[i] = acc;
        }
        out
    }

    /// Element-wise sum. Panics on dimension mismatch.
    pub fn add(&self, rhs: &CMatrix) -> CMatrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| *a + *b)
                .collect(),
        }
    }

    /// Element-wise difference. Panics on dimension mismatch.
    pub fn sub(&self, rhs: &CMatrix) -> CMatrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| *a - *b)
                .collect(),
        }
    }

    /// Scales every element by a real factor.
    pub fn scale(&self, k: f64) -> CMatrix {
        CMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|z| z.scale(k)).collect(),
        }
    }

    /// Gram matrix `AᴴA` used by the least-squares normal equations.
    pub fn gram(&self) -> CMatrix {
        // Computed directly to avoid materialising the Hermitian transpose.
        let mut out = CMatrix::zeros(self.cols, self.cols);
        for i in 0..self.cols {
            for j in 0..self.cols {
                let mut acc = Complex::ZERO;
                for k in 0..self.rows {
                    acc += self[(k, i)].conj() * self[(k, j)];
                }
                out[(i, j)] = acc;
            }
        }
        out
    }

    /// `Aᴴ v` — the right-hand side of the least-squares normal equations.
    pub fn hermitian_matvec(&self, v: &CVec) -> CVec {
        assert_eq!(self.rows, v.len(), "hermitian_matvec: dimension mismatch");
        let mut out = CVec::zeros(self.cols);
        for j in 0..self.cols {
            let mut acc = Complex::ZERO;
            for i in 0..self.rows {
                acc += self[(i, j)].conj() * v[i];
            }
            out[j] = acc;
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Maximum absolute element value; 0 for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().map(|z| z.abs()).fold(0.0, f64::max)
    }
}

impl std::ops::Index<(usize, usize)> for CMatrix {
    type Output = Complex;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &Complex {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for CMatrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Complex {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Display for CMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                write!(f, "{} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64, im: f64) -> Complex {
        Complex::new(re, im)
    }

    #[test]
    fn identity_is_neutral_for_matmul() {
        let a = CMatrix::from_rows(&[
            vec![c(1.0, 1.0), c(2.0, 0.0)],
            vec![c(0.0, -1.0), c(3.0, 0.5)],
        ]);
        let i = CMatrix::identity(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn hermitian_twice_is_identity_operation() {
        let a = CMatrix::from_rows(&[
            vec![c(1.0, 1.0), c(2.0, -3.0), c(0.0, 0.5)],
            vec![c(4.0, 0.0), c(-1.0, 1.0), c(2.0, 2.0)],
        ]);
        assert_eq!(a.hermitian().hermitian(), a);
        assert_eq!(a.hermitian().rows(), 3);
        assert_eq!(a.hermitian().cols(), 2);
    }

    #[test]
    fn gram_matches_explicit_product() {
        let a = CMatrix::from_rows(&[
            vec![c(1.0, 1.0), c(2.0, -3.0)],
            vec![c(4.0, 0.0), c(-1.0, 1.0)],
            vec![c(0.5, 0.5), c(0.0, 2.0)],
        ]);
        let g1 = a.gram();
        let g2 = a.hermitian().matmul(&a);
        for i in 0..2 {
            for j in 0..2 {
                assert!((g1[(i, j)] - g2[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn gram_is_hermitian_positive_diagonal() {
        let a = CMatrix::from_rows(&[
            vec![c(1.0, -1.0), c(0.0, 2.0)],
            vec![c(3.0, 0.0), c(1.0, 1.0)],
        ]);
        let g = a.gram();
        for i in 0..2 {
            assert!(g[(i, i)].im.abs() < 1e-12);
            assert!(g[(i, i)].re > 0.0);
            for j in 0..2 {
                assert!((g[(i, j)] - g[(j, i)].conj()).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn matvec_matches_manual() {
        let a = CMatrix::from_rows(&[
            vec![c(1.0, 0.0), c(0.0, 1.0)],
            vec![c(2.0, 0.0), c(0.0, 0.0)],
        ]);
        let v = CVec(vec![c(1.0, 1.0), c(2.0, -1.0)]);
        let r = a.matvec(&v);
        assert!((r[0] - (c(1.0, 1.0) + c(0.0, 1.0) * c(2.0, -1.0))).abs() < 1e-12);
        assert!((r[1] - c(2.0, 2.0)).abs() < 1e-12);
    }

    #[test]
    fn hermitian_matvec_matches_explicit() {
        let a = CMatrix::from_rows(&[
            vec![c(1.0, 1.0), c(2.0, -3.0)],
            vec![c(4.0, 0.0), c(-1.0, 1.0)],
            vec![c(0.5, 0.5), c(0.0, 2.0)],
        ]);
        let v = CVec(vec![c(1.0, 0.0), c(0.0, 1.0), c(2.0, 2.0)]);
        let r1 = a.hermitian_matvec(&v);
        let r2 = a.hermitian().matvec(&v);
        for i in 0..2 {
            assert!((r1[i] - r2[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn diag_and_row_col_access() {
        let d = CMatrix::diag(&[c(1.0, 0.0), c(0.0, 2.0)]);
        assert_eq!(d.row(0)[0], c(1.0, 0.0));
        assert_eq!(d.col(1)[1], c(0.0, 2.0));
        assert_eq!(d.col(1)[0], Complex::ZERO);
    }

    #[test]
    #[should_panic]
    fn matmul_dimension_mismatch_panics() {
        let a = CMatrix::zeros(2, 3);
        let b = CMatrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
