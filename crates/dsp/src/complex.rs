//! A minimal complex scalar type.
//!
//! The whole reproduction works in double precision baseband samples, so a
//! simple `{ re, im }` struct with the usual field arithmetic is sufficient.
//! We implement it ourselves (rather than pulling in `num-complex`) to keep
//! the substrate dependency-free and because the estimators only require a
//! handful of operations: add/sub/mul/div, conjugation, magnitude and
//! argument.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number in rectangular form with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Complex {
    /// Real (in-phase) component.
    pub re: f64,
    /// Imaginary (quadrature) component.
    pub im: f64,
}

impl Complex {
    /// The additive identity `0 + 0j`.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0j`.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1j`.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular coordinates.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates `r * exp(j*theta)`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex {
            re: r * theta.cos(),
            im: r * theta.sin(),
        }
    }

    /// `exp(j*theta)`, a unit phasor.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Self::from_polar(1.0, theta)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude `|z|^2 = re^2 + im^2`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Argument (phase angle) in radians, in `(-pi, pi]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Returns `Complex::ZERO` divided-by-zero semantics are avoided by the
    /// caller; for `z == 0` the result contains infinities/NaNs exactly as
    /// naive division would.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        Complex {
            re: self.re / d,
            im: -self.im / d,
        }
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex {
            re: self.re * k,
            im: self.im * k,
        }
    }

    /// Complex exponential `exp(z)`.
    #[inline]
    pub fn exp(self) -> Self {
        let r = self.re.exp();
        Complex {
            re: r * self.im.cos(),
            im: r * self.im.sin(),
        }
    }

    /// Principal square root.
    pub fn sqrt(self) -> Self {
        let r = self.abs();
        let theta = self.arg();
        Complex::from_polar(r.sqrt(), theta / 2.0)
    }

    /// Returns `true` if either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// Returns `true` if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.6}+{:.6}j", self.re, self.im)
        } else {
            write!(f, "{:.6}-{:.6}j", self.re, -self.im)
        }
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Complex::from_real(re)
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Mul<Complex> for f64 {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        rhs.scale(self)
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z / w == z * w^-1
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.inv()
    }
}

impl DivAssign for Complex {
    #[inline]
    fn div_assign(&mut self, rhs: Complex) {
        *self = *self / rhs;
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        Complex::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |acc, z| acc + z)
    }
}

impl<'a> Sum<&'a Complex> for Complex {
    fn sum<I: Iterator<Item = &'a Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |acc, z| acc + *z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    fn close(a: Complex, b: Complex) -> bool {
        (a - b).abs() < EPS
    }

    #[test]
    fn addition_and_subtraction() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(-3.0, 0.5);
        assert!(close(a + b, Complex::new(-2.0, 2.5)));
        assert!(close(a - b, Complex::new(4.0, 1.5)));
        assert!(close((a + b) - b, a));
    }

    #[test]
    fn multiplication_matches_expansion() {
        let a = Complex::new(2.0, 3.0);
        let b = Complex::new(4.0, -1.0);
        // (2+3j)(4-1j) = 8 - 2j + 12j - 3j^2 = 11 + 10j
        assert!(close(a * b, Complex::new(11.0, 10.0)));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex::new(2.5, -1.5);
        let b = Complex::new(0.7, 0.3);
        assert!(close((a * b) / b, a));
    }

    #[test]
    fn conjugate_and_norm() {
        let a = Complex::new(3.0, 4.0);
        assert_eq!(a.abs(), 5.0);
        assert_eq!(a.norm_sqr(), 25.0);
        assert!(close(a * a.conj(), Complex::from_real(25.0)));
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex::from_polar(2.0, 0.7);
        assert!((z.abs() - 2.0).abs() < EPS);
        assert!((z.arg() - 0.7).abs() < EPS);
    }

    #[test]
    fn cis_is_unit_magnitude() {
        for k in 0..16 {
            let theta = k as f64 * std::f64::consts::PI / 8.0;
            assert!((Complex::cis(theta).abs() - 1.0).abs() < EPS);
        }
    }

    #[test]
    fn inverse_gives_one() {
        let z = Complex::new(-1.25, 0.5);
        assert!(close(z * z.inv(), Complex::ONE));
    }

    #[test]
    fn exp_of_imaginary_is_cis() {
        let theta = 1.234;
        assert!(close(Complex::new(0.0, theta).exp(), Complex::cis(theta)));
    }

    #[test]
    fn sqrt_squares_back() {
        let z = Complex::new(-3.0, 4.0);
        let s = z.sqrt();
        assert!(close(s * s, z));
    }

    #[test]
    fn sum_iterator() {
        let v = [Complex::new(1.0, 1.0); 4];
        let s: Complex = v.iter().sum();
        assert!(close(s, Complex::new(4.0, 4.0)));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(format!("{}", Complex::new(1.0, -2.0)), "1.000000-2.000000j");
        assert_eq!(format!("{}", Complex::new(1.0, 2.0)), "1.000000+2.000000j");
    }
}
