//! Correlation utilities.
//!
//! Three users in the reproduction:
//!
//! * the receiver's preamble detector and symbol despreader correlate the
//!   received chips against the known PN sequences,
//! * the mean-phase-offset estimator (Eq. 8) is a Hermitian correlation of
//!   two channel estimates, and
//! * the Kalman/AR estimator derives its AR coefficients from the
//!   autocorrelation coefficients of the perfect channel estimates
//!   (Yule–Walker, Eq. 12–14).

use crate::complex::Complex;
use crate::cvec::CVec;

/// Sliding cross-correlation of `signal` against `reference`.
///
/// Output index `k` holds `Σ_i signal[k + i] * conj(reference[i])`, i.e. the
/// correlation of the reference aligned at offset `k`.  The output has
/// `signal.len() - reference.len() + 1` entries (empty if the reference is
/// longer than the signal).
pub fn cross_correlation(signal: &[Complex], reference: &[Complex]) -> CVec {
    if reference.is_empty() || signal.len() < reference.len() {
        return CVec::zeros(0);
    }
    let n = signal.len() - reference.len() + 1;
    let mut out = CVec::zeros(n);
    for k in 0..n {
        let mut acc = Complex::ZERO;
        for (i, r) in reference.iter().enumerate() {
            acc += signal[k + i] * r.conj();
        }
        out[k] = acc;
    }
    out
}

/// Normalized correlation magnitude at a single offset, in `[0, 1]`.
///
/// Computes `|⟨s, r⟩| / (‖s‖‖r‖)` over the overlapping window starting at
/// `offset`.  Used by the preamble detector to make a threshold decision that
/// is independent of the receive power.
pub fn normalized_correlation_at(signal: &[Complex], reference: &[Complex], offset: usize) -> f64 {
    if reference.is_empty() || offset + reference.len() > signal.len() {
        return 0.0;
    }
    let window = &signal[offset..offset + reference.len()];
    let mut acc = Complex::ZERO;
    let mut es = 0.0;
    let mut er = 0.0;
    for (s, r) in window.iter().zip(reference.iter()) {
        acc += *s * r.conj();
        es += s.norm_sqr();
        er += r.norm_sqr();
    }
    if es == 0.0 || er == 0.0 {
        return 0.0;
    }
    acc.abs() / (es.sqrt() * er.sqrt())
}

/// Biased autocorrelation `R[τ] = (1/N) Σ_k x[k] * conj(x[k-τ])` for
/// `τ = 0..=max_lag`.
///
/// The biased (1/N) normalisation guarantees a positive semi-definite
/// autocorrelation sequence, which keeps the Yule–Walker system solvable.
pub fn autocorrelation(x: &[Complex], max_lag: usize) -> CVec {
    let n = x.len();
    let mut out = CVec::zeros(max_lag + 1);
    if n == 0 {
        return out;
    }
    for tau in 0..=max_lag {
        let mut acc = Complex::ZERO;
        for k in tau..n {
            acc += x[k] * x[k - tau].conj();
        }
        out[tau] = acc / n as f64;
    }
    out
}

/// Autocorrelation *coefficients* `r[τ] = R[τ] / R[0]` for `τ = 0..=max_lag`.
///
/// This is the normalisation used in Eq. 13 of the paper (the variance of the
/// tap process is `R[0]`).  Returns all zeros when the signal has zero
/// energy.
pub fn autocorrelation_coefficients(x: &[Complex], max_lag: usize) -> CVec {
    let r = autocorrelation(x, max_lag);
    let r0 = r[0];
    if r0.abs() == 0.0 {
        return CVec::zeros(max_lag + 1);
    }
    CVec(r.iter().map(|&v| v / r0).collect())
}

/// Mean phase offset between two channel estimates (Eq. 8):
/// `θ̂ = arg{ ĥ¹ · (ĥ²)ᴴ }`.
///
/// `current` is the newer estimate, `reference` the older one; rotating
/// `reference` by `exp(jθ̂)` aligns it with `current` in the mean-phase sense.
pub fn mean_phase_offset(current: &CVec, reference: &CVec) -> f64 {
    assert_eq!(
        current.len(),
        reference.len(),
        "mean_phase_offset: length mismatch"
    );
    current.dot_h(reference).arg()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64, im: f64) -> Complex {
        Complex::new(re, im)
    }

    #[test]
    fn cross_correlation_peaks_at_embedded_offset() {
        let reference = [c(1.0, 0.0), c(-1.0, 0.0), c(1.0, 0.0), c(1.0, 0.0)];
        let mut signal = vec![Complex::ZERO; 10];
        for (i, r) in reference.iter().enumerate() {
            signal[3 + i] = *r;
        }
        let corr = cross_correlation(&signal, &reference);
        assert_eq!(corr.argmax_abs(), Some(3));
        assert!((corr[3].re - 4.0).abs() < 1e-12);
    }

    #[test]
    fn normalized_correlation_is_one_for_scaled_copy() {
        let reference = [c(1.0, 1.0), c(-1.0, 0.5), c(0.25, -2.0)];
        let signal: Vec<Complex> = reference.iter().map(|z| z.scale(3.7)).collect();
        let rho = normalized_correlation_at(&signal, &reference, 0);
        assert!((rho - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalized_correlation_out_of_range_is_zero() {
        let reference = [Complex::ONE; 4];
        let signal = [Complex::ONE; 5];
        assert_eq!(normalized_correlation_at(&signal, &reference, 3), 0.0);
    }

    #[test]
    fn autocorrelation_lag_zero_is_power() {
        let x = [c(1.0, 0.0), c(0.0, 2.0), c(-1.0, -1.0)];
        let r = autocorrelation(&x, 2);
        let power = x.iter().map(|z| z.norm_sqr()).sum::<f64>() / 3.0;
        assert!((r[0].re - power).abs() < 1e-12);
        assert!(r[0].im.abs() < 1e-12);
    }

    #[test]
    fn autocorrelation_coefficients_start_at_one() {
        let x = [c(1.0, 0.3), c(0.9, 0.2), c(0.8, 0.4), c(1.1, 0.1)];
        let r = autocorrelation_coefficients(&x, 3);
        assert!((r[0] - Complex::ONE).abs() < 1e-12);
        // Coefficients never exceed 1 in magnitude for a biased estimate.
        for tau in 1..=3 {
            assert!(r[tau].abs() <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn autocorrelation_of_zero_signal_is_zero() {
        let x = [Complex::ZERO; 5];
        let r = autocorrelation_coefficients(&x, 2);
        assert!(r.iter().all(|z| *z == Complex::ZERO));
    }

    #[test]
    fn mean_phase_offset_recovers_applied_rotation() {
        let h = CVec(vec![c(0.8, 0.1), c(0.3, -0.4), c(0.05, 0.2)]);
        for &theta in &[-2.5f64, -0.7, 0.0, 0.3, 1.9] {
            let rotated = h.rotate(Complex::cis(theta));
            let est = mean_phase_offset(&rotated, &h);
            assert!((est - theta).abs() < 1e-12, "theta={theta}, est={est}");
        }
    }

    #[test]
    fn mean_phase_offset_correction_aligns_estimates() {
        let h = CVec(vec![c(0.8, 0.1), c(0.3, -0.4), c(0.05, 0.2)]);
        let rotated = h.rotate(Complex::cis(1.2));
        let theta = mean_phase_offset(&h, &rotated);
        let corrected = rotated.rotate(Complex::cis(theta));
        assert!(corrected.squared_error(&h) < 1e-24);
    }
}
