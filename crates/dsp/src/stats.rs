//! Scalar statistics helpers.
//!
//! The paper reports every metric as a box plot over the 15 set-combination
//! means (Sec. 6).  [`BoxStats`] computes exactly those five-number summaries
//! plus mean, and the free functions cover the mean/variance needs of the
//! Kalman filter and the evaluation harness.

use serde::{Deserialize, Serialize};

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population variance; 0 for slices with fewer than two elements.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Linear-interpolation quantile (`q` in `[0, 1]`) of an unsorted slice.
///
/// Returns 0 for an empty slice.  Equivalent to numpy's default
/// `interpolation="linear"` percentile, which is what a box plot uses.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median (50th percentile).
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// Five-number summary plus mean, as drawn by a box plot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoxStats {
    /// Smallest observation.
    pub min: f64,
    /// First quartile (25th percentile).
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile (75th percentile).
    pub q3: f64,
    /// Largest observation.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Number of observations summarised.
    pub n: usize,
}

impl BoxStats {
    /// Computes the summary of a sample; all fields are 0 for an empty slice.
    pub fn from_samples(xs: &[f64]) -> Self {
        if xs.is_empty() {
            return BoxStats {
                min: 0.0,
                q1: 0.0,
                median: 0.0,
                q3: 0.0,
                max: 0.0,
                mean: 0.0,
                n: 0,
            };
        }
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        BoxStats {
            min,
            q1: quantile(xs, 0.25),
            median: median(xs),
            q3: quantile(xs, 0.75),
            max,
            mean: mean(xs),
            n: xs.len(),
        }
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

impl std::fmt::Display for BoxStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "min={:.4e} q1={:.4e} med={:.4e} q3={:.4e} max={:.4e} mean={:.4e} (n={})",
            self.min, self.q1, self.median, self.q3, self.max, self.mean, self.n
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_basic() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), 2.5);
        assert!((variance(&xs) - 1.25).abs() < 1e-12);
        assert!((std_dev(&xs) - 1.25f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_are_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert_eq!(quantile(&[], 0.5), 0.0);
        assert_eq!(BoxStats::from_samples(&[]).n, 0);
    }

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [0.0, 10.0];
        assert_eq!(quantile(&xs, 0.25), 2.5);
        assert_eq!(quantile(&xs, 0.0), 0.0);
        assert_eq!(quantile(&xs, 1.0), 10.0);
    }

    #[test]
    fn box_stats_ordering_invariant() {
        let xs = [0.3, 0.1, 0.9, 0.5, 0.2, 0.7];
        let b = BoxStats::from_samples(&xs);
        assert!(b.min <= b.q1);
        assert!(b.q1 <= b.median);
        assert!(b.median <= b.q3);
        assert!(b.q3 <= b.max);
        assert_eq!(b.n, 6);
        assert!(b.iqr() >= 0.0);
    }

    #[test]
    fn box_stats_of_constant_sample() {
        let xs = [2.0; 5];
        let b = BoxStats::from_samples(&xs);
        assert_eq!(b.min, 2.0);
        assert_eq!(b.max, 2.0);
        assert_eq!(b.median, 2.0);
        assert_eq!(b.mean, 2.0);
        assert_eq!(b.iqr(), 0.0);
    }
}
