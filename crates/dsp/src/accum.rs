//! Fixed-order floating-point reductions.
//!
//! Floating-point addition and multiplication do not associate: the result
//! of a reduction depends on the order the elements are combined in.  The
//! workspace's bit-identity contract (goldens fixed at any worker count)
//! therefore requires every float reduction on a hot or parallel path to
//! have *one* pinned combination order.  The kernels in `vvd_nn::kernels`
//! pin their accumulation order element-by-element; these helpers are the
//! same policy packaged for iterator-style code: a strict left fold in
//! iteration order, never reassociated, never chunked.
//!
//! The `float-reduce` rule of `vvd-analyze` bans bare `.sum()` /
//! `.product()` in kernel and `thread::scope` files; routing the reduction
//! through this module both fixes the order and marks the intent at the
//! call site.

/// Sums `xs` by a strict left fold in iteration order (`+0.0` start).
///
/// Bit-identical to `Iterator::sum` on today's std, but *guaranteed* —
/// the order is this function's contract, not an implementation detail.
pub fn sum_f32(xs: impl IntoIterator<Item = f32>) -> f32 {
    xs.into_iter().fold(0.0, |acc, x| acc + x)
}

/// [`sum_f32`] for `f64`.
pub fn sum_f64(xs: impl IntoIterator<Item = f64>) -> f64 {
    xs.into_iter().fold(0.0, |acc, x| acc + x)
}

/// Multiplies `xs` by a strict left fold in iteration order (`1.0` start).
pub fn product_f32(xs: impl IntoIterator<Item = f32>) -> f32 {
    xs.into_iter().fold(1.0, |acc, x| acc * x)
}

/// [`product_f32`] for `f64`.
pub fn product_f64(xs: impl IntoIterator<Item = f64>) -> f64 {
    xs.into_iter().fold(1.0, |acc, x| acc * x)
}

/// Dot product of two slices, accumulated strictly left to right.
///
/// Panics if the slices differ in length — a dot product over mismatched
/// operands is always a caller bug.
pub fn dot_f32(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot product operands must match");
    let mut acc = 0.0f32;
    for (x, y) in a.iter().zip(b.iter()) {
        acc += x * y;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_match_iterator_sum_bitwise() {
        let xs: Vec<f32> = (0..1000).map(|i| ((i * 37) % 101) as f32 * 0.017).collect();
        assert_eq!(
            sum_f32(xs.iter().copied()).to_bits(),
            xs.iter().sum::<f32>().to_bits()
        );
        let ys: Vec<f64> = xs.iter().map(|x| *x as f64).collect();
        assert_eq!(
            sum_f64(ys.iter().copied()).to_bits(),
            ys.iter().sum::<f64>().to_bits()
        );
    }

    #[test]
    fn order_sensitivity_is_real_and_pinned() {
        // A permutation that changes the f32 result — the reason the
        // helpers exist.  The pinned order must be the iteration order.
        let xs = [1.0e8f32, 1.0, -1.0e8];
        let permuted = [1.0e8f32, -1.0e8, 1.0];
        assert_ne!(sum_f32(xs), sum_f32(permuted));
        assert_eq!(sum_f32(xs), (1.0e8f32 + 1.0) + -1.0e8);
    }

    #[test]
    fn products_fold_left() {
        let xs = [0.1f64, 3.0, 7.0];
        assert_eq!(product_f64(xs), ((1.0 * 0.1) * 3.0) * 7.0);
        assert_eq!(product_f32([]), 1.0);
    }

    #[test]
    fn dot_accumulates_in_order() {
        let a = [1.0f32, 2.0, 3.0];
        let b = [4.0f32, 5.0, 6.0];
        assert_eq!(dot_f32(&a, &b), ((1.0f32 * 4.0) + 2.0 * 5.0) + 3.0 * 6.0);
    }

    #[test]
    #[should_panic]
    fn dot_rejects_mismatched_lengths() {
        let _ = dot_f32(&[1.0], &[1.0, 2.0]);
    }
}
