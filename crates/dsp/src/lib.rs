//! # vvd-dsp
//!
//! Complex arithmetic, dense complex linear algebra and basic DSP primitives
//! used throughout the Veni Vidi Dixi (CoNEXT '19) reproduction.
//!
//! The paper models the wireless channel as a sample-spaced complex FIR
//! filter (a tapped delay line, Eq. 2–3) and obtains estimates of it via
//! linear least squares on convolution matrices (Eq. 4–5).  Everything needed
//! for that — a [`Complex`] scalar, complex vectors/matrices, a linear
//! solver, convolution-matrix construction, FIR filtering and correlation —
//! lives in this crate so the higher layers (PHY, channel simulator,
//! estimators) can share one numerically consistent substrate.
//!
//! The crate is dependency-free (besides `serde` for persistence) and fully
//! synchronous: the workload is small dense algebra (11–64 tap systems), not
//! I/O, so there is no benefit to an async runtime here.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod accum;
pub mod cmatrix;
pub mod complex;
pub mod convolution;
pub mod correlation;
pub mod cvec;
pub mod fir;
pub mod resample;
pub mod solve;
pub mod stats;
pub mod workers;

pub use cmatrix::CMatrix;
pub use complex::Complex;
pub use convolution::{convolution_matrix, convolve, convolve_full};
pub use correlation::{autocorrelation, autocorrelation_coefficients, cross_correlation};
pub use cvec::CVec;
pub use fir::FirFilter;
pub use solve::{least_squares, solve_linear};
pub use workers::{
    autotune_dir, checkpoint_interval, per_process_worker_budget, pipeline_enabled, proc_budget,
    worker_budget,
};
