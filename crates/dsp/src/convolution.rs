//! Linear convolution and convolution-matrix construction.
//!
//! The least-squares channel estimator of the paper (Eq. 4) is built on the
//! convolution matrix `Xᵏ` of the known reference samples (Eq. 5): a
//! `(N + M − 1) × N` Toeplitz matrix whose columns are shifted copies of the
//! reference signal.  The same construction, applied to an estimated channel
//! `ĥ`, yields the matrix `Hᵏ` used to design the zero-forcing equalizer
//! (Eq. 6–7).  This module provides that builder plus plain linear
//! convolution used by the channel simulator and the equalizer.

use crate::cmatrix::CMatrix;
use crate::complex::Complex;
use crate::cvec::CVec;

/// Builds the `(M + N − 1) × N` convolution (Toeplitz) matrix of the
/// reference signal `x` for an `N`-tap FIR estimate, exactly as in Eq. 5 of
/// the paper.
///
/// `M = x.len()` is the number of reference samples. Column `j` contains `x`
/// delayed by `j` samples. Multiplying this matrix by an `N`-tap channel
/// vector yields the full linear convolution `x * h`.
///
/// # Panics
/// Panics if `x` is empty or `n_taps == 0`.
pub fn convolution_matrix(x: &[Complex], n_taps: usize) -> CMatrix {
    assert!(!x.is_empty(), "convolution_matrix: empty reference signal");
    assert!(n_taps > 0, "convolution_matrix: zero taps requested");
    let m = x.len();
    let rows = m + n_taps - 1;
    let mut out = CMatrix::zeros(rows, n_taps);
    for (i, &xi) in x.iter().enumerate() {
        for j in 0..n_taps {
            out[(i + j, j)] = xi;
        }
    }
    out
}

/// Full linear convolution of `x` and `h`, returning `x.len() + h.len() - 1`
/// samples.
pub fn convolve_full(x: &[Complex], h: &[Complex]) -> CVec {
    if x.is_empty() || h.is_empty() {
        return CVec::zeros(0);
    }
    let n = x.len() + h.len() - 1;
    let mut out = CVec::zeros(n);
    for (i, &xi) in x.iter().enumerate() {
        if xi == Complex::ZERO {
            continue;
        }
        for (j, &hj) in h.iter().enumerate() {
            out[i + j] += xi * hj;
        }
    }
    out
}

/// "Same-length" convolution: convolves `x` with `h` and returns exactly
/// `x.len()` samples starting at the given `delay` offset into the full
/// convolution.
///
/// This models what a receiver sees after a channel with `delay` pre-cursor
/// samples: the output is aligned so that `out[k]` corresponds to `x[k]`
/// passed through the tap at index `delay`.
pub fn convolve(x: &[Complex], h: &[Complex], delay: usize) -> CVec {
    let full = convolve_full(x, h);
    let mut out = CVec::zeros(x.len());
    for k in 0..x.len() {
        let idx = k + delay;
        if idx < full.len() {
            out[k] = full[idx];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64, im: f64) -> Complex {
        Complex::new(re, im)
    }

    #[test]
    fn matrix_shape_matches_eq5() {
        // M = 3 reference samples, N = 3 taps -> (3+3-1) x 3 = 5 x 3.
        let x = [c(1.0, 0.0), c(2.0, 0.0), c(3.0, 0.0)];
        let m = convolution_matrix(&x, 3);
        assert_eq!(m.rows(), 5);
        assert_eq!(m.cols(), 3);
        // First column is x followed by zeros; diagonal structure as in Eq. 5.
        assert_eq!(m[(0, 0)], c(1.0, 0.0));
        assert_eq!(m[(1, 0)], c(2.0, 0.0));
        assert_eq!(m[(2, 0)], c(3.0, 0.0));
        assert_eq!(m[(0, 1)], Complex::ZERO);
        assert_eq!(m[(1, 1)], c(1.0, 0.0));
        assert_eq!(m[(4, 2)], c(3.0, 0.0));
        assert_eq!(m[(0, 2)], Complex::ZERO);
    }

    #[test]
    fn matrix_times_taps_equals_convolution() {
        let x = [c(1.0, 0.5), c(-2.0, 1.0), c(0.25, -0.75), c(3.0, 0.0)];
        let h = [c(0.5, 0.0), c(0.0, 1.0), c(-1.0, 0.25)];
        let m = convolution_matrix(&x, h.len());
        let via_matrix = m.matvec(&CVec(h.to_vec()));
        let direct = convolve_full(&x, &h);
        assert_eq!(via_matrix.len(), direct.len());
        assert!(via_matrix.squared_error(&direct) < 1e-24);
    }

    #[test]
    fn convolution_with_unit_impulse_is_identity() {
        let x = [c(1.0, 1.0), c(2.0, -1.0), c(3.0, 0.5)];
        let h = [Complex::ONE];
        let y = convolve_full(&x, &h);
        assert_eq!(y.as_slice(), &x);
    }

    #[test]
    fn convolution_with_delayed_impulse_shifts() {
        let x = [c(1.0, 0.0), c(2.0, 0.0)];
        let h = [Complex::ZERO, Complex::ZERO, Complex::ONE];
        let y = convolve_full(&x, &h);
        assert_eq!(y.len(), 4);
        assert_eq!(y[0], Complex::ZERO);
        assert_eq!(y[1], Complex::ZERO);
        assert_eq!(y[2], c(1.0, 0.0));
        assert_eq!(y[3], c(2.0, 0.0));
    }

    #[test]
    fn convolution_is_commutative() {
        let x = [c(1.0, 0.5), c(-2.0, 1.0), c(0.25, -0.75)];
        let h = [c(0.5, 0.0), c(0.0, 1.0)];
        let a = convolve_full(&x, &h);
        let b = convolve_full(&h, &x);
        assert!(a.squared_error(&b) < 1e-24);
    }

    #[test]
    fn same_length_convolution_aligns_on_delay() {
        let x = [c(1.0, 0.0), c(2.0, 0.0), c(3.0, 0.0)];
        let h = [Complex::ZERO, Complex::ONE]; // pure one-sample delay
        let y = convolve(&x, &h, 1);
        // Aligned on the delayed tap, the output should equal the input.
        assert!(y.squared_error(&CVec(x.to_vec())) < 1e-24);
    }

    #[test]
    fn empty_inputs_yield_empty_output() {
        assert_eq!(convolve_full(&[], &[Complex::ONE]).len(), 0);
        assert_eq!(convolve_full(&[Complex::ONE], &[]).len(), 0);
    }
}
