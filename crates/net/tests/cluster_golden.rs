//! Cross-process golden: a cluster of **real worker processes** (the
//! `vvd-worker` binary, framed over stdio pipes) serving a mixed
//! VVD + fallback workload must produce a report bit-identical to the
//! single-process in-process run — at 1, 2 and 4 worker processes — and,
//! with a shared on-disk model cache, must train every distinct model
//! exactly once cluster-wide.

use std::path::PathBuf;
use vvd_net::{serve_cluster, ClusterOptions, WorkerBackend};
use vvd_serve::{serve, LoadGenerator, ServeOptions, SessionSpec};
use vvd_testbed::EvalConfig;

fn golden_config() -> EvalConfig {
    let mut cfg = EvalConfig::smoke();
    cfg.n_sets = 3;
    cfg.packets_per_set = 12;
    cfg.kalman_warmup_packets = 2;
    cfg.max_vvd_training_samples = 30;
    cfg
}

/// Mixed workload with VVD heads (so trainings, the model cache and
/// batched inference are all on the wire path) alongside cheap classical
/// and fallback heads, across two scenarios and a staggered schedule.
fn mixed_specs() -> Vec<SessionSpec> {
    let scenarios = ["paper", "rician:k=6,doppler=30"];
    let estimators = [
        "vvd:current",
        "ground-truth",
        "fallback:preamble,vvd:current",
        "previous:100ms",
        "standard",
    ];
    // Scenario blocks of two (not `i % 2`): under round-robin partition
    // the same scenario's VVD sessions then land on *different* workers at
    // every tested worker count, so the shared-disk-cache path is
    // genuinely exercised (later workers disk-hit models earlier workers
    // trained).
    (0..8)
        .map(|i| {
            SessionSpec::new(scenarios[(i / 2) % 2], estimators[i % estimators.len()])
                .every((i % 3 + 1) as u64)
                .offset((i % 4) as u64)
        })
        .collect()
}

fn worker_binary() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_vvd-worker"))
}

fn scratch_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("vvd-net-golden-{tag}-{}", std::process::id()))
}

#[test]
fn worker_processes_reproduce_the_single_process_digest_at_1_2_and_4() {
    let cfg = golden_config();
    let specs = mixed_specs();
    let reference = serve(
        LoadGenerator::new(cfg).build(&specs).unwrap(),
        &ServeOptions {
            shards: 1,
            ..ServeOptions::default()
        },
    );

    for workers in [1usize, 2, 4] {
        let cache_dir = scratch_dir(&format!("k{workers}"));
        let report = serve_cluster(
            &cfg,
            &specs,
            &ClusterOptions {
                workers,
                shards: 2,
                granularity: 5,
                cache_dir: Some(cache_dir.clone()),
                backend: WorkerBackend::Binary(worker_binary()),
                checkpoints: false,
                pipeline: vvd_dsp::pipeline_enabled(),
                fault: None,
            },
        )
        .unwrap_or_else(|e| panic!("cluster of {workers} worker processes failed: {e}"));

        assert_eq!(
            report.digest(),
            reference.digest(),
            "digest diverged at {workers} worker processes"
        );
        assert_eq!(report.sessions.len(), reference.sessions.len());
        assert_eq!(report.packets_streamed, reference.packets_streamed);
        assert_eq!(report.packets_served, reference.packets_served);
        for (merged, single) in report.sessions.iter().zip(&reference.sessions) {
            assert_eq!(merged.session_id, single.session_id);
            assert_eq!(merged.scenario, single.scenario);
            assert_eq!(merged.estimator, single.estimator);
            assert_eq!(merged.per.to_bits(), single.per.to_bits());
            assert_eq!(merged.cer.to_bits(), single.cer.to_bits());
            assert_eq!(
                merged.mse.map(f64::to_bits),
                single.mse.map(f64::to_bits),
                "session {} MSE",
                single.session_id
            );
        }

        // Shared disk cache + staggered fits: every distinct model trains
        // exactly once *cluster-wide* — exactly as often as the
        // single-process run trains it.
        assert_eq!(
            report.model_cache.misses, reference.model_cache.misses,
            "cluster of {workers} trained more models than one process: {}",
            report.model_cache
        );
        if workers > 1 {
            // Same-provenance sessions land on different workers under
            // round-robin, so later workers resolve from disk.
            assert!(
                report.model_cache.disk_hits > 0,
                "expected shared-cache disk hits at {workers} workers: {}",
                report.model_cache
            );
        }

        let _ = std::fs::remove_dir_all(&cache_dir);
    }
}

#[test]
fn worker_binary_rejects_garbage_without_hanging() {
    use std::io::Write;
    use std::process::{Command, Stdio};

    let mut child = Command::new(worker_binary())
        .stdin(Stdio::piped())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    child
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(b"these bytes are not a frame")
        .unwrap();
    let status = child.wait().unwrap();
    assert!(
        !status.success(),
        "a worker fed garbage must exit non-zero, got {status:?}"
    );
}

#[test]
fn worker_binary_honours_an_early_shutdown() {
    use vvd_net::{ChildTransport, Message, Transport};

    let mut transport =
        ChildTransport::spawn(&mut std::process::Command::new(worker_binary())).unwrap();
    let hello = transport.recv().unwrap();
    assert!(matches!(hello, Message::Hello(_)), "got {hello:?}");
    transport.send(&Message::Shutdown).unwrap();
    let status = transport.finish().unwrap();
    assert!(status.success(), "shutdown before assignment must be clean");
}
