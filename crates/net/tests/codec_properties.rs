//! Property suite for the wire codec: whatever bytes arrive, decoding is
//! total — it returns a value or a typed [`WireError`], never panics,
//! never hangs, never allocates from an untrusted length — and whatever
//! *valid* message leaves, it round-trips bit-exactly.

use proptest::prelude::*;
use vvd_estimation::ModelCacheStats;
use vvd_net::message::{
    AssignSessions, AssignedSession, CacheStats, CheckpointFrame, Hello, Message, ResumeSessions,
    SessionReport, TickBarrier,
};
use vvd_net::wire::{read_frame, write_frame, WireError, MAX_FRAME_PAYLOAD};
use vvd_phy::DecodeOutcome;
use vvd_serve::BatchCounters;

/// A random-but-valid message assembled from drawn primitives.  Floats are
/// drawn as raw bit patterns (NaNs and infinities included), so round
/// trips are compared on re-encoded bytes, not on `PartialEq`.
fn build_message(selector: usize, words: &[u64], text: &str, flags: (bool, bool)) -> Message {
    let word = |i: usize| words[i % words.len().max(1)];
    let outcome = |i: usize| DecodeOutcome {
        crc_ok: word(i) % 2 == 0,
        chip_errors: word(i + 1) as usize,
        chip_count: word(i + 2) as usize,
        symbol_errors: word(i + 3) as usize,
    };
    let filter = |i: usize| {
        let taps: Vec<vvd_dsp::Complex> = (0..(word(i) % 5) as usize)
            .map(|t| {
                vvd_dsp::Complex::new(f64::from_bits(word(i + t)), f64::from_bits(word(i + t + 1)))
            })
            .collect();
        vvd_dsp::FirFilter::from_taps(&taps)
    };
    let assign = || AssignSessions {
        worker_index: word(0) as u32,
        shards: word(1) as u32,
        cache_dir: flags.0.then(|| text.to_string()),
        config_json: text.to_string(),
        sessions: (0..words.len() % 4)
            .map(|i| AssignedSession {
                id: word(i),
                scenario: text.to_string(),
                estimator: text.chars().rev().collect(),
                interval_ticks: word(i + 1),
                offset_ticks: word(i + 2),
                combination: word(i + 3),
            })
            .collect(),
        checkpoints: flags.1,
        pipeline: flags.0,
    };
    match selector % 9 {
        0 => Message::Hello(Hello { pid: word(0) }),
        1 => Message::AssignSessions(assign()),
        2 => Message::TickBarrier(TickBarrier {
            ticks: word(0),
            done: flags.1,
        }),
        3 => Message::SessionReport(SessionReport {
            id: word(0),
            scenario: text.to_string(),
            label: text.to_uppercase(),
            packets_streamed: word(1),
            scored: (0..words.len() % 5).map(outcome).collect(),
            per_packet: (0..words.len() % 3).map(outcome).collect(),
            estimates: (0..words.len() % 3).map(filter).collect(),
            truths: (0..words.len() % 3).map(filter).collect(),
        }),
        4 => Message::CacheStats(CacheStats {
            ticks: word(0),
            cache: ModelCacheStats {
                hits: word(1),
                disk_hits: word(2),
                misses: word(3),
                evictions: word(4),
                entries: word(5) as usize,
            },
            batches: BatchCounters {
                batch_calls: word(6),
                images: word(7),
                max_batch: word(8) as usize,
            },
        }),
        5 => Message::Shutdown,
        6 => Message::CheckpointFrame(CheckpointFrame {
            frame: (0..words.len() % 6).map(|i| word(i) as u8).collect(),
        }),
        7 => Message::ResumeSessions(ResumeSessions {
            assign: assign(),
            frame: flags
                .0
                .then(|| (0..words.len() % 6).map(|i| word(i) as u8).collect()),
        }),
        _ => Message::Error {
            message: text.to_string(),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Valid messages survive a full frame round trip bit-exactly:
    /// encode → frame → unframe → decode → re-encode yields the same
    /// payload bytes and the same kind tag (byte comparison sidesteps
    /// NaN's `PartialEq`).
    #[test]
    fn messages_round_trip_through_frames_bit_exactly(
        selector in 0usize..9,
        words in proptest::collection::vec(any::<u64>(), 1..12),
        text_bytes in proptest::collection::vec(any::<u8>(), 0..40),
        flags in (any::<bool>(), any::<bool>()),
    ) {
        let text = String::from_utf8_lossy(&text_bytes).into_owned();
        let msg = build_message(selector, &words, &text, flags);
        let payload = msg.encode_payload();

        let mut framed = Vec::new();
        write_frame(&mut framed, msg.kind(), &payload).unwrap();
        let (kind, unframed) = read_frame(&mut framed.as_slice()).unwrap();
        prop_assert_eq!(kind, msg.kind());
        prop_assert_eq!(&unframed, &payload);

        let decoded = Message::decode_payload(kind, &unframed).unwrap();
        prop_assert_eq!(decoded.kind(), msg.kind());
        prop_assert_eq!(decoded.encode_payload(), payload);
    }

    /// Arbitrary byte soup never panics or hangs the frame reader: it
    /// yields a frame or a typed error.
    #[test]
    fn random_bytes_never_panic_the_frame_reader(
        bytes in proptest::collection::vec(any::<u8>(), 0..600),
    ) {
        match read_frame(&mut bytes.as_slice()) {
            Ok((kind, payload)) => {
                // A random blob that frames correctly must really carry
                // that many bytes.
                prop_assert!(payload.len() as u32 <= MAX_FRAME_PAYLOAD);
                let _ = Message::decode_payload(kind, &payload);
            }
            Err(
                WireError::Closed
                | WireError::Truncated { .. }
                | WireError::BadMagic { .. }
                | WireError::UnsupportedVersion { .. }
                | WireError::FrameTooLarge { .. }
                | WireError::Io(_),
            ) => {}
            Err(other) => prop_assert!(false, "unexpected error class: {other:?}"),
        }
    }

    /// Arbitrary payload bytes under every kind tag decode totally:
    /// a message or a typed error, never a panic — and never an
    /// allocation driven by an untrusted length prefix (a hostile
    /// `u32::MAX` element count must fail, not OOM).
    #[test]
    fn random_payloads_never_panic_the_message_decoder(
        kind in 0u16..10,
        payload in proptest::collection::vec(any::<u8>(), 0..300),
    ) {
        let _ = Message::decode_payload(kind, &payload);
    }

    /// Every strict prefix of a valid frame fails with a typed error —
    /// mid-frame EOF at any byte offset is handled, not panicked on.
    #[test]
    fn every_truncation_of_a_valid_frame_fails_typed(
        selector in 0usize..9,
        words in proptest::collection::vec(any::<u64>(), 1..6),
        cut_point in any::<prop::sample::Index>(),
    ) {
        let msg = build_message(selector, &words, "труба-77", (true, false));
        let mut framed = Vec::new();
        write_frame(&mut framed, msg.kind(), &msg.encode_payload()).unwrap();

        let cut = cut_point.index(framed.len());
        // The length prefix pins the payload size, so a strict prefix of
        // the byte stream must fail at one layer or the other — a cut can
        // never be self-delimiting.
        let failure = match read_frame(&mut framed[..cut].as_ref()) {
            Err(e) => Some(e),
            Ok((kind, payload)) => Message::decode_payload(kind, &payload).err(),
        };
        prop_assert!(
            failure.is_some(),
            "cut at {} of {} decoded fully", cut, framed.len()
        );
        let err = failure.expect("just asserted Some");
        prop_assert!(
            matches!(
                err,
                WireError::Closed
                    | WireError::Truncated { .. }
                    | WireError::Malformed { .. }
                    | WireError::TrailingBytes { .. }
            ),
            "cut at {} of {}: unexpected error {:?}", cut, framed.len(), err
        );
    }

    /// Flipping any single byte of a valid frame never panics the
    /// reader/decoder stack; it yields some message or a typed error.
    #[test]
    fn single_byte_corruption_is_handled_totally(
        selector in 0usize..9,
        words in proptest::collection::vec(any::<u64>(), 1..6),
        flip_at in any::<prop::sample::Index>(),
        flip_with in 1u8..=255,
    ) {
        let msg = build_message(selector, &words, "frame", (false, true));
        let mut framed = Vec::new();
        write_frame(&mut framed, msg.kind(), &msg.encode_payload()).unwrap();
        let at = flip_at.index(framed.len());
        framed[at] ^= flip_with;

        if let Ok((kind, payload)) = read_frame(&mut framed.as_slice()) {
            let _ = Message::decode_payload(kind, &payload);
        }
    }
}
