//! Crash-recovery golden over **real worker processes**: a `vvd-worker`
//! child killed mid-stream (SIGKILL via the deterministic
//! [`InjectedFault`] hook, always at a tick barrier) is respawned by the
//! coordinator and resumed from its last acked checkpoint frame — and the
//! merged report digests **bit-identically** to the uninterrupted
//! single-process run, at 1, 2 and 4 worker processes.

use std::path::PathBuf;
use vvd_net::{serve_cluster, ClusterError, ClusterOptions, InjectedFault, WorkerBackend};
use vvd_serve::{serve, LoadGenerator, ServeOptions, SessionSpec};
use vvd_testbed::EvalConfig;

fn golden_config() -> EvalConfig {
    let mut cfg = EvalConfig::smoke();
    cfg.n_sets = 3;
    cfg.packets_per_set = 12;
    cfg.kalman_warmup_packets = 2;
    cfg.max_vvd_training_samples = 30;
    cfg
}

/// Mixed workload including VVD heads, so recovery rebuilds (and
/// cache-hits) trained models, not just classical state.
fn mixed_specs() -> Vec<SessionSpec> {
    let scenarios = ["paper", "rician:k=6,doppler=30"];
    let estimators = [
        "vvd:current",
        "ground-truth",
        "fallback:preamble,vvd:current",
        "previous:100ms",
        "kalman:ar=2",
        "standard",
    ];
    (0..8)
        .map(|i| {
            SessionSpec::new(scenarios[(i / 2) % 2], estimators[i % estimators.len()])
                .every((i % 3 + 1) as u64)
                .offset((i % 4) as u64)
        })
        .collect()
}

fn worker_binary() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_vvd-worker"))
}

fn scratch_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("vvd-net-resilience-{tag}-{}", std::process::id()))
}

#[test]
fn a_killed_worker_process_is_resumed_with_an_identical_digest_at_1_2_and_4() {
    let cfg = golden_config();
    let specs = mixed_specs();
    let reference = serve(
        LoadGenerator::new(cfg).build(&specs).unwrap(),
        &ServeOptions {
            shards: 1,
            ..ServeOptions::default()
        },
    );

    for (workers, at_tick) in [(1usize, 2u64), (2, 2), (2, 4), (4, 2)] {
        let cache_dir = scratch_dir(&format!("k{workers}t{at_tick}"));
        let report = serve_cluster(
            &cfg,
            &specs,
            &ClusterOptions {
                workers,
                shards: 2,
                granularity: 2,
                cache_dir: Some(cache_dir.clone()),
                backend: WorkerBackend::Binary(worker_binary()),
                checkpoints: true,
                pipeline: vvd_dsp::pipeline_enabled(),
                fault: Some(InjectedFault { worker: 0, at_tick }),
            },
        )
        .unwrap_or_else(|e| {
            panic!("recovery at {workers} workers (kill at tick {at_tick}) failed: {e}")
        });

        assert_eq!(
            report.digest(),
            reference.digest(),
            "digest diverged at {workers} workers after a kill at tick {at_tick}"
        );
        assert_eq!(report.sessions.len(), reference.sessions.len());
        assert_eq!(report.packets_streamed, reference.packets_streamed);
        for (merged, single) in report.sessions.iter().zip(&reference.sessions) {
            assert_eq!(merged.session_id, single.session_id);
            assert_eq!(merged.per.to_bits(), single.per.to_bits());
            assert_eq!(merged.cer.to_bits(), single.cer.to_bits());
        }
        let _ = std::fs::remove_dir_all(&cache_dir);
    }
}

#[test]
fn checkpoints_are_harmless_when_no_fault_fires() {
    // The checkpoint stream rides along every barrier ack; with no crash
    // it must be pure overhead — same digest as the checkpoint-free run.
    let cfg = golden_config();
    let specs = mixed_specs();
    let reference = serve(
        LoadGenerator::new(cfg).build(&specs).unwrap(),
        &ServeOptions {
            shards: 1,
            ..ServeOptions::default()
        },
    );
    let report = serve_cluster(
        &cfg,
        &specs,
        &ClusterOptions {
            workers: 2,
            shards: 2,
            granularity: 3,
            cache_dir: None,
            backend: WorkerBackend::Binary(worker_binary()),
            checkpoints: true,
            pipeline: vvd_dsp::pipeline_enabled(),
            fault: None,
        },
    )
    .unwrap();
    assert_eq!(report.digest(), reference.digest());
}

#[test]
fn a_killed_worker_process_without_checkpoints_is_a_final_wire_error() {
    let cfg = golden_config();
    let specs = mixed_specs();
    let err = serve_cluster(
        &cfg,
        &specs,
        &ClusterOptions {
            workers: 2,
            shards: 1,
            granularity: 2,
            cache_dir: None,
            backend: WorkerBackend::Binary(worker_binary()),
            checkpoints: false,
            pipeline: vvd_dsp::pipeline_enabled(),
            fault: Some(InjectedFault {
                worker: 1,
                at_tick: 2,
            }),
        },
    )
    .unwrap_err();
    assert!(
        matches!(err, ClusterError::Wire { worker: 1, .. }),
        "expected the kill to surface as a wire error, got {err}"
    );
}
