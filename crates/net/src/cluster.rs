//! The coordinator: partitions a workload over worker processes and
//! merges their traces into one [`ServeReport`].
//!
//! [`serve_cluster`] is the cross-process counterpart of
//! [`vvd_serve::serve`], and produces a report whose
//! [`digest`](ServeReport::digest) is **bit-identical** to the
//! single-process run of the same specs, at any worker count.  The
//! argument, end to end:
//!
//! 1. Sessions share no mutable state, and training is deterministic —
//!    a worker rebuilding sessions `{i : i ≡ w (mod K)}` via
//!    [`LoadGenerator::build_assigned`] produces sessions bit-identical
//!    to those of the full single-process build (model-cache hits hand
//!    back models a fresh training would reproduce bit for bit, so the
//!    fit order and cache topology are invisible).
//! 2. Batch composition and stepping granularity never change values,
//!    only scheduling — pinned engine properties.
//! 3. The wire codec moves floats as IEEE-754 bit patterns, so collected
//!    traces are bit-identical to the workers' in-memory traces.
//! 4. Traces are merged in ascending workload-global session order —
//!    exactly the order the single-process report uses.
//!
//! The digest deliberately excludes everything that legitimately differs
//! across cluster shapes (tick counts, batch occupancy, cache counters,
//! wall-clock).
//!
//! # Staggered fit
//!
//! Workers are assigned one at a time: the coordinator waits for worker
//! `w`'s ready ack (sent after its fit completes) before assigning worker
//! `w+1`.  With a shared on-disk model cache this makes every distinct
//! training run **exactly once cluster-wide** — later workers load the
//! published model instead of retraining it.  Serving itself then runs
//! fully concurrently between tick barriers.

use crate::message::{
    AssignSessions, AssignedSession, CacheStats, Message, ResumeSessions, TickBarrier,
};
use crate::transport::{loopback_pair, ChildTransport, LoopbackTransport, Transport};
use crate::wire::WireError;
use crate::worker::{run_worker, WORKER_ARG};
use std::fmt;
use std::path::PathBuf;
use std::process::Command;
use std::time::Instant;
use vvd_estimation::ModelCacheStats;
use vvd_serve::{
    BatchCounters, LoadGenerator, ReportAssemblyError, ServeReport, ServeSpecError, SessionSpec,
};
use vvd_testbed::stream::EstimatorTrace;
use vvd_testbed::EvalConfig;

/// How the coordinator materialises its workers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkerBackend {
    /// In-process worker threads over loopback channels.  The full wire
    /// protocol runs (every frame is encoded and decoded), only the OS
    /// process boundary is elided — fast and self-contained, the default.
    Loopback,
    /// Spawn the given worker binary (`vvd-worker`) per worker, framed
    /// over its stdio pipes.
    Binary(PathBuf),
    /// Re-execute the current binary with [`WORKER_ARG`] as its first
    /// argument.  The binary must call
    /// [`maybe_run_worker`](crate::maybe_run_worker) first thing in
    /// `main` — this is how examples and benches become their own worker
    /// fleet without a second binary.
    SelfExec,
}

/// A deterministic fault injection: kill worker `worker`'s transport once
/// at least `at_tick` ticks have been offered to it — always at a tick
/// barrier, so the "crash" lands at the same protocol point on every run.
/// This is how the resilience tests exercise crash recovery without
/// nondeterministic signals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedFault {
    /// Index of the worker to kill.
    pub worker: usize,
    /// Cumulative offered-tick threshold at which the kill fires.
    pub at_tick: u64,
}

/// Execution options of a cluster serve run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterOptions {
    /// Number of worker processes. Defaults to
    /// [`vvd_dsp::proc_budget`] (the `VVD_PROCS` override).
    pub workers: usize,
    /// Thread shards per worker.  Defaults to
    /// [`vvd_dsp::per_process_worker_budget`], which honours an explicit
    /// `VVD_WORKERS` verbatim and otherwise divides the hardware
    /// parallelism across the workers.
    pub shards: usize,
    /// Tick budget per barrier round (≥ 1).  Pure scheduling: invisible
    /// in the digest.
    pub granularity: u64,
    /// Shared on-disk model cache directory.  With one, every distinct
    /// training runs exactly once cluster-wide (see the module docs);
    /// without, each worker trains its own models.
    pub cache_dir: Option<PathBuf>,
    /// Worker materialisation.
    pub backend: WorkerBackend,
    /// When `true`, every worker ships a checkpoint frame with each
    /// barrier ack and the coordinator recovers dead workers by
    /// respawning them and resuming from the last acked checkpoint.
    /// Defaults to whether `VVD_CHECKPOINT_TICKS` is set (the ambient
    /// checkpoint policy of [`vvd_dsp::checkpoint_interval`]).
    pub checkpoints: bool,
    /// Whether worker engines run the double-buffered tick pipeline
    /// (`ServeOptions::pipeline`).  Defaults to
    /// [`vvd_dsp::pipeline_enabled`] *in the coordinator*, and is pinned
    /// into every worker's assignment so the cluster never mixes ambient
    /// per-process defaults.  Pure scheduling: digests are identical
    /// either way, at every cluster size.
    pub pipeline: bool,
    /// A deterministic fault injection, for testing crash recovery.
    /// `None` (the default) injects nothing.
    pub fault: Option<InjectedFault>,
}

impl Default for ClusterOptions {
    fn default() -> Self {
        let workers = vvd_dsp::proc_budget();
        ClusterOptions {
            workers,
            shards: vvd_dsp::per_process_worker_budget(workers),
            granularity: 64,
            cache_dir: None,
            backend: WorkerBackend::Loopback,
            checkpoints: vvd_dsp::checkpoint_interval().is_some(),
            pipeline: vvd_dsp::pipeline_enabled(),
            fault: None,
        }
    }
}

/// A cluster serve run failed.
#[derive(Debug)]
pub enum ClusterError {
    /// The workload specs failed validation (nothing was spawned).
    Spec(ServeSpecError),
    /// The campaign configuration could not be serialized for transport.
    Config(String),
    /// A worker process could not be spawned.
    Spawn(std::io::Error),
    /// The link to a worker failed (transport or codec).
    Wire {
        /// Index of the worker whose link failed.
        worker: usize,
        /// The underlying wire failure.
        error: WireError,
    },
    /// A worker reported a failure of its own (bad workload build, …).
    Worker {
        /// Index of the reporting worker.
        worker: usize,
        /// The worker's failure description.
        message: String,
    },
    /// A worker violated the protocol (unexpected message, bad session
    /// ids, short report stream).
    Protocol {
        /// Index of the offending worker.
        worker: usize,
        /// What was violated.
        context: String,
    },
    /// The collected per-session reports do not merge into one complete
    /// report (duplicate, missing or misordered session ids).
    Merge(ReportAssemblyError),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Spec(e) => write!(f, "invalid workload: {e}"),
            ClusterError::Config(msg) => write!(f, "config serialization failed: {msg}"),
            ClusterError::Spawn(e) => write!(f, "worker spawn failed: {e}"),
            ClusterError::Wire { worker, error } => {
                write!(f, "link to worker {worker} failed: {error}")
            }
            ClusterError::Worker { worker, message } => {
                write!(f, "worker {worker} failed: {message}")
            }
            ClusterError::Protocol { worker, context } => {
                write!(f, "worker {worker} violated the protocol: {context}")
            }
            ClusterError::Merge(e) => {
                write!(f, "collected session reports do not merge: {e}")
            }
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<ServeSpecError> for ClusterError {
    fn from(e: ServeSpecError) -> Self {
        ClusterError::Spec(e)
    }
}

/// One live worker link: the transport plus whatever must be joined or
/// reaped when the run ends.
enum WorkerLink {
    Loopback {
        transport: LoopbackTransport,
        thread: Option<std::thread::JoinHandle<()>>,
    },
    Child(ChildTransport),
}

impl WorkerLink {
    fn transport(&mut self) -> &mut dyn Transport {
        match self {
            WorkerLink::Loopback { transport, .. } => transport,
            WorkerLink::Child(child) => child,
        }
    }

    /// Kills the worker mid-protocol (the [`InjectedFault`] hook).  For a
    /// child process this kills it outright; for a loopback worker the
    /// coordinator's transport end is swapped for a dead one, so the
    /// worker thread sees a closed stream and exits — either way the
    /// coordinator subsequently observes exactly what a real crash looks
    /// like: sends fail and receives report a broken stream.
    fn kill(&mut self) {
        match self {
            WorkerLink::Loopback { transport, thread } => {
                let (dead, _) = loopback_pair();
                // Dropping the old end closes both directions; the worker
                // thread exits on its next recv and is left detached.
                *transport = dead;
                drop(thread.take());
            }
            WorkerLink::Child(child) => child.kill(),
        }
    }

    /// Orderly teardown after the protocol completed.
    fn close(self) {
        match self {
            WorkerLink::Loopback {
                transport,
                mut thread,
            } => {
                // Dropping the transport closes the worker's stream; the
                // thread (already past its Shutdown recv) exits.
                drop(transport);
                if let Some(handle) = thread.take() {
                    let _ = handle.join();
                }
            }
            WorkerLink::Child(child) => {
                let _ = child.finish();
            }
        }
    }
}

fn spawn_link(backend: &WorkerBackend) -> Result<WorkerLink, ClusterError> {
    match backend {
        WorkerBackend::Loopback => {
            let (coordinator_end, mut worker_end) = loopback_pair();
            let thread = std::thread::spawn(move || {
                // Worker-side failures surface at the coordinator as
                // Error frames or closed streams; nothing to do here.
                let _ = run_worker(&mut worker_end);
            });
            Ok(WorkerLink::Loopback {
                transport: coordinator_end,
                thread: Some(thread),
            })
        }
        WorkerBackend::Binary(path) => {
            let child =
                ChildTransport::spawn(&mut Command::new(path)).map_err(ClusterError::Spawn)?;
            Ok(WorkerLink::Child(child))
        }
        WorkerBackend::SelfExec => {
            let exe = std::env::current_exe().map_err(ClusterError::Spawn)?;
            let mut cmd = Command::new(exe);
            cmd.arg(WORKER_ARG);
            let child = ChildTransport::spawn(&mut cmd).map_err(ClusterError::Spawn)?;
            Ok(WorkerLink::Child(child))
        }
    }
}

/// A finished cluster run: the merged report plus each worker's own
/// accounting (which the merge sums away).
#[derive(Debug)]
pub struct ClusterRun {
    /// The merged report — digest bit-identical to the single-process run.
    pub report: ServeReport,
    /// Each worker's end-of-run accounting, indexed by worker.  The
    /// per-worker model-cache counters are how a shared disk cache shows
    /// its work: later workers report `disk_hits` where the first worker
    /// to need a model reports the single `miss` that trained it.
    pub per_worker: Vec<CacheStats>,
}

/// Serves the workload across `options.workers` worker processes and
/// merges their traces into one report.
///
/// Sessions are partitioned round-robin (session `i` → worker `i mod K`)
/// and merged back in ascending global session order, so the merged
/// report's [`digest`](ServeReport::digest) is bit-identical to
/// `vvd_serve::serve` over the same specs — the property
/// `crates/net/tests/cluster_golden.rs` pins across worker counts and
/// backends.  The merged report's `ticks` is the maximum over workers
/// (each worker only ticks instants at which one of *its* sessions is
/// due); batching and cache counters are summed.
///
/// # Errors
/// Validation failures before anything is spawned; spawn, wire, worker
/// and protocol failures afterwards (in-flight workers are reaped on the
/// way out — links kill their child on drop).
pub fn serve_cluster(
    config: &EvalConfig,
    specs: &[SessionSpec],
    options: &ClusterOptions,
) -> Result<ServeReport, ClusterError> {
    serve_cluster_detailed(config, specs, options).map(|run| run.report)
}

/// [`serve_cluster`], additionally surfacing each worker's own
/// accounting (per-worker cache/batching counters and tick counts).
///
/// # Errors
/// See [`serve_cluster`].
pub fn serve_cluster_detailed(
    config: &EvalConfig,
    specs: &[SessionSpec],
    options: &ClusterOptions,
) -> Result<ClusterRun, ClusterError> {
    // vvd-allow: wall-clock — observability only; `ServeReport::digest()` excludes timing
    let started = Instant::now();

    let generator = LoadGenerator::new(*config);
    generator.validate(specs)?;
    let config_json =
        serde_json::to_string(config).map_err(|e| ClusterError::Config(e.to_string()))?;

    let workers = options.workers.max(1);
    let granularity = options.granularity.max(1);
    let cache_dir = options
        .cache_dir
        .as_ref()
        .map(|p| p.to_string_lossy().into_owned());

    // Round-robin partition in stable session order.
    let mut parts: Vec<Vec<AssignedSession>> = (0..workers).map(|_| Vec::new()).collect();
    for (id, spec) in specs.iter().enumerate() {
        parts[id % workers].push(AssignedSession {
            id: id as u64,
            scenario: spec.scenario.clone(),
            estimator: spec.estimator.clone(),
            interval_ticks: spec.interval_ticks,
            offset_ticks: spec.offset_ticks,
            combination: spec.combination as u64,
        });
    }

    let checkpoints = options.checkpoints;
    let mut fault = options.fault;

    // Each worker's assignment is kept verbatim: it is what a replacement
    // worker receives (inside a ResumeSessions) when the original dies.
    let assigns: Vec<AssignSessions> = parts
        .iter()
        .enumerate()
        .map(|(w, sessions)| AssignSessions {
            worker_index: w as u32,
            shards: options.shards.max(1) as u32,
            cache_dir: cache_dir.clone(),
            config_json: config_json.clone(),
            sessions: sessions.clone(),
            checkpoints,
            pipeline: options.pipeline,
        })
        .collect();

    // Spawn + assign, staggered: wait for each worker's ready ack (fit
    // complete) before assigning the next, so shared-cache trainings
    // never race (module docs).
    let mut links: Vec<WorkerLink> = Vec::with_capacity(workers);
    let mut done: Vec<bool> = Vec::with_capacity(workers);
    // Last checkpoint frame acked per worker (the resume point), and how
    // many respawns each worker has left (bounds a crash-looping host).
    let mut last_frame: Vec<Option<Vec<u8>>> = vec![None; workers];
    let mut respawns_left: Vec<usize> = vec![MAX_RESPAWNS; workers];
    for (w, assign) in assigns.iter().enumerate() {
        let mut link = spawn_link(&options.backend)?;
        let transport = link.transport();
        expect_hello(transport.recv(), w)?;
        transport
            .send(&Message::AssignSessions(assign.clone()))
            .map_err(|error| ClusterError::Wire { worker: w, error })?;
        let ready = recv_ready(transport, w, checkpoints, &mut last_frame[w])?;
        done.push(ready.done);
        links.push(link);
    }

    // Barrier rounds: offer every unfinished worker a tick budget, then
    // collect every ack.  Workers advance concurrently within a round.
    // A worker whose link dies mid-round (transport error where an ack was
    // due) is — when checkpoints are on — respawned, handed its original
    // assignment plus the last checkpoint frame it acked, and replays
    // forward deterministically; without checkpoints the failure is final.
    let mut offered: u64 = 0;
    while done.iter().any(|d| !d) {
        // Deterministic fault injection, always at a barrier boundary.
        if let Some(f) = fault {
            if offered >= f.at_tick && f.worker < links.len() && !done[f.worker] {
                links[f.worker].kill();
                fault = None;
            }
        }
        offered += granularity;

        for (w, link) in links.iter_mut().enumerate() {
            if !done[w] {
                // A failed send means the link is dead; the recv pass
                // below observes the same dead link and recovers it.
                let _ = link.transport().send(&Message::TickBarrier(TickBarrier {
                    ticks: granularity,
                    done: false,
                }));
            }
        }
        for w in 0..links.len() {
            if done[w] {
                continue;
            }
            match recv_ready(links[w].transport(), w, checkpoints, &mut last_frame[w]) {
                Ok(ack) => done[w] = ack.done,
                // Transport/codec death at a barrier: recover when we can.
                Err(ClusterError::Wire { error, .. }) => {
                    let (link, ready) = recover_worker(
                        w,
                        &options.backend,
                        &assigns[w],
                        &mut last_frame[w],
                        &mut respawns_left[w],
                        checkpoints,
                        error,
                    )?;
                    links[w] = link;
                    done[w] = ready.done;
                }
                // Worker-reported and protocol errors are not crashes.
                Err(other) => return Err(other),
            }
        }
    }

    // Collect: each drained worker streams one report per assigned
    // session (ascending global id) then its run accounting.
    let mut session_reports: Vec<crate::message::SessionReport> = Vec::with_capacity(specs.len());
    let mut per_worker: Vec<CacheStats> = Vec::with_capacity(workers);
    for (w, link) in links.iter_mut().enumerate() {
        let transport = link.transport();
        for _ in 0..parts[w].len() {
            match transport.recv() {
                Ok(Message::SessionReport(report)) => session_reports.push(report),
                Ok(Message::Error { message }) => {
                    return Err(ClusterError::Worker { worker: w, message })
                }
                Ok(other) => {
                    return Err(ClusterError::Protocol {
                        worker: w,
                        context: format!("expected SessionReport, got {}", other.name()),
                    })
                }
                Err(error) => return Err(ClusterError::Wire { worker: w, error }),
            }
        }
        match transport.recv() {
            Ok(Message::CacheStats(stats)) => per_worker.push(stats),
            Ok(other) => {
                return Err(ClusterError::Protocol {
                    worker: w,
                    context: format!("expected CacheStats, got {}", other.name()),
                })
            }
            Err(error) => return Err(ClusterError::Wire { worker: w, error }),
        }
        transport
            .send(&Message::Shutdown)
            .map_err(|error| ClusterError::Wire { worker: w, error })?;
    }
    let mut ticks = 0u64;
    let mut batches = BatchCounters::default();
    let mut model_cache = ModelCacheStats::default();
    for stats in &per_worker {
        ticks = ticks.max(stats.ticks);
        batches.absorb(stats.batches);
        model_cache.absorb(&stats.cache);
    }
    for link in links {
        link.close();
    }

    // Merge in ascending global session order — the single-process order.
    // Completeness (exactly ids 0..specs.len(), no duplicates, no gaps) is
    // the report assembler's job now: a session lost to an unrecovered
    // worker surfaces as a typed merge error, never a mis-zipped report.
    session_reports.sort_by_key(|r| r.id);

    let meta: Vec<(usize, String, String, usize)> = session_reports
        .iter()
        .map(|r| {
            (
                r.id as usize,
                r.scenario.clone(),
                r.label.clone(),
                r.packets_streamed as usize,
            )
        })
        .collect();
    let traces: Vec<EstimatorTrace> = session_reports
        .into_iter()
        .map(|r| EstimatorTrace {
            label: r.label,
            scored: r.scored,
            estimates: r.estimates,
            truths: r.truths,
            per_packet: r.per_packet,
        })
        .collect();

    Ok(ClusterRun {
        report: ServeReport::assemble_complete(
            specs.len(),
            meta,
            traces,
            ticks,
            batches,
            model_cache,
            started.elapsed(),
        )
        .map_err(ClusterError::Merge)?,
        per_worker,
    })
}

/// How many times one worker slot may be respawned before its failures
/// become final — bounds a host that crash-loops faster than it serves.
const MAX_RESPAWNS: usize = 3;

/// Receives a worker's barrier ack — preceded, when checkpoints are on,
/// by the checkpoint frame the ack vouches for (stored as the worker's
/// resume point).
fn recv_ready(
    transport: &mut dyn Transport,
    worker: usize,
    checkpoints: bool,
    last_frame: &mut Option<Vec<u8>>,
) -> Result<TickBarrier, ClusterError> {
    if checkpoints {
        match transport.recv() {
            Ok(Message::CheckpointFrame(checkpoint)) => *last_frame = Some(checkpoint.frame),
            Ok(Message::Error { message }) => return Err(ClusterError::Worker { worker, message }),
            Ok(other) => {
                return Err(ClusterError::Protocol {
                    worker,
                    context: format!("expected CheckpointFrame, got {}", other.name()),
                })
            }
            Err(error) => return Err(ClusterError::Wire { worker, error }),
        }
    }
    expect_barrier(transport.recv(), worker)
}

/// Crash recovery for one worker slot: respawn, hand over the original
/// assignment plus the last acked checkpoint frame, and wait for the
/// replacement's ready ack (it replays to the checkpoint tick during its
/// rebuild — deterministically, so the recovered run's traces are
/// bit-identical to an uninterrupted one).
///
/// Without checkpoints (no resume point is ever collected) or once the
/// respawn budget is spent, the original transport error is final.
fn recover_worker(
    worker: usize,
    backend: &WorkerBackend,
    assign: &AssignSessions,
    last_frame: &mut Option<Vec<u8>>,
    respawns_left: &mut usize,
    checkpoints: bool,
    original: WireError,
) -> Result<(WorkerLink, TickBarrier), ClusterError> {
    if !checkpoints || *respawns_left == 0 {
        return Err(ClusterError::Wire {
            worker,
            error: original,
        });
    }
    *respawns_left -= 1;

    let mut link = spawn_link(backend)?;
    let transport = link.transport();
    expect_hello(transport.recv(), worker)?;
    transport
        .send(&Message::ResumeSessions(ResumeSessions {
            assign: assign.clone(),
            frame: last_frame.clone(),
        }))
        .map_err(|error| ClusterError::Wire { worker, error })?;
    let ready = recv_ready(transport, worker, checkpoints, last_frame)?;
    Ok((link, ready))
}

fn expect_hello(received: Result<Message, WireError>, worker: usize) -> Result<(), ClusterError> {
    match received {
        Ok(Message::Hello(_)) => Ok(()),
        Ok(Message::Error { message }) => Err(ClusterError::Worker { worker, message }),
        Ok(other) => Err(ClusterError::Protocol {
            worker,
            context: format!("expected Hello, got {}", other.name()),
        }),
        Err(error) => Err(ClusterError::Wire { worker, error }),
    }
}

fn expect_barrier(
    received: Result<Message, WireError>,
    worker: usize,
) -> Result<TickBarrier, ClusterError> {
    match received {
        Ok(Message::TickBarrier(barrier)) => Ok(barrier),
        Ok(Message::Error { message }) => Err(ClusterError::Worker { worker, message }),
        Ok(other) => Err(ClusterError::Protocol {
            worker,
            context: format!("expected TickBarrier, got {}", other.name()),
        }),
        Err(error) => Err(ClusterError::Wire { worker, error }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vvd_serve::{serve, ServeOptions};

    fn tiny_config() -> EvalConfig {
        let mut cfg = EvalConfig::smoke();
        cfg.n_sets = 3;
        cfg.packets_per_set = 10;
        cfg.kalman_warmup_packets = 2;
        cfg
    }

    fn mixed_specs() -> Vec<SessionSpec> {
        vec![
            SessionSpec::new("paper", "ground-truth"),
            SessionSpec::new("paper", "previous:100ms").every(2),
            SessionSpec::new("paper", "standard").every(3).offset(4),
            SessionSpec::new("rayleigh:doppler=10", "preamble:genie")
                .every(2)
                .offset(1),
            SessionSpec::new("rayleigh:doppler=10", "standard").offset(2),
        ]
    }

    #[test]
    fn loopback_cluster_matches_single_process_digest() {
        let cfg = tiny_config();
        let reference = serve(
            LoadGenerator::new(cfg).build(&mixed_specs()).unwrap(),
            &ServeOptions {
                shards: 1,
                ..ServeOptions::default()
            },
        );
        for workers in [1usize, 2, 3, 5, 7] {
            let report = serve_cluster(
                &cfg,
                &mixed_specs(),
                &ClusterOptions {
                    workers,
                    shards: 2,
                    granularity: 3,
                    cache_dir: None,
                    backend: WorkerBackend::Loopback,
                    checkpoints: false,
                    pipeline: vvd_dsp::pipeline_enabled(),
                    fault: None,
                },
            )
            .unwrap();
            assert_eq!(
                report.digest(),
                reference.digest(),
                "digest diverged at {workers} workers"
            );
            assert_eq!(report.sessions.len(), reference.sessions.len());
            assert_eq!(report.packets_streamed, reference.packets_streamed);
            // Session summaries merge back in global order with identical
            // quality numbers.
            for (merged, single) in report.sessions.iter().zip(&reference.sessions) {
                assert_eq!(merged.session_id, single.session_id);
                assert_eq!(merged.estimator, single.estimator);
                assert_eq!(merged.per.to_bits(), single.per.to_bits());
                assert_eq!(merged.cer.to_bits(), single.cer.to_bits());
            }
        }
    }

    #[test]
    fn more_workers_than_sessions_leaves_idle_workers_harmless() {
        let cfg = tiny_config();
        let specs = vec![
            SessionSpec::new("paper", "ground-truth"),
            SessionSpec::new("paper", "standard").every(2),
        ];
        let reference = serve(
            LoadGenerator::new(cfg).build(&specs).unwrap(),
            &ServeOptions {
                shards: 1,
                ..ServeOptions::default()
            },
        );
        let run = serve_cluster_detailed(
            &cfg,
            &specs,
            &ClusterOptions {
                workers: 6,
                shards: 1,
                granularity: 1000,
                cache_dir: None,
                backend: WorkerBackend::Loopback,
                checkpoints: false,
                pipeline: vvd_dsp::pipeline_enabled(),
                fault: None,
            },
        )
        .unwrap();
        assert_eq!(run.report.digest(), reference.digest());
        // Every worker reports accounting, the idle ones all zeros.
        assert_eq!(run.per_worker.len(), 6);
        assert!(run.per_worker[2..].iter().all(|s| s.ticks == 0));
    }

    #[test]
    fn invalid_specs_fail_before_any_worker_spawns() {
        let cfg = tiny_config();
        let err = serve_cluster(
            &cfg,
            &[SessionSpec::new("paper", "nonsense")],
            &ClusterOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, ClusterError::Spec(_)), "got {err}");
    }

    #[test]
    fn granularity_is_pure_scheduling() {
        let cfg = tiny_config();
        let mut digests = Vec::new();
        for granularity in [1u64, 7, 10_000] {
            let report = serve_cluster(
                &cfg,
                &mixed_specs(),
                &ClusterOptions {
                    workers: 2,
                    shards: 1,
                    granularity,
                    cache_dir: None,
                    backend: WorkerBackend::Loopback,
                    checkpoints: false,
                    pipeline: vvd_dsp::pipeline_enabled(),
                    fault: None,
                },
            )
            .unwrap();
            digests.push(report.digest());
        }
        assert!(digests.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn killed_worker_resumes_from_checkpoint_with_identical_digest() {
        let cfg = tiny_config();
        let reference = serve(
            LoadGenerator::new(cfg).build(&mixed_specs()).unwrap(),
            &ServeOptions {
                shards: 1,
                ..ServeOptions::default()
            },
        );
        // Kill a worker at several protocol points: before any serving
        // tick (only the ready-ack checkpoint exists) and mid-stream.
        for (worker, at_tick) in [(0usize, 0u64), (0, 2), (1, 4)] {
            let report = serve_cluster(
                &cfg,
                &mixed_specs(),
                &ClusterOptions {
                    workers: 2,
                    shards: 1,
                    granularity: 2,
                    cache_dir: None,
                    backend: WorkerBackend::Loopback,
                    checkpoints: true,
                    pipeline: vvd_dsp::pipeline_enabled(),
                    fault: Some(InjectedFault { worker, at_tick }),
                },
            )
            .unwrap();
            assert_eq!(
                report.digest(),
                reference.digest(),
                "digest diverged after killing worker {worker} at tick {at_tick}"
            );
        }
    }

    #[test]
    fn a_crash_without_checkpoints_is_final() {
        let cfg = tiny_config();
        let err = serve_cluster(
            &cfg,
            &mixed_specs(),
            &ClusterOptions {
                workers: 2,
                shards: 1,
                granularity: 2,
                cache_dir: None,
                backend: WorkerBackend::Loopback,
                checkpoints: false,
                pipeline: vvd_dsp::pipeline_enabled(),
                fault: Some(InjectedFault {
                    worker: 0,
                    at_tick: 2,
                }),
            },
        )
        .unwrap_err();
        assert!(
            matches!(err, ClusterError::Wire { worker: 0, .. }),
            "got {err}"
        );
    }
}
