//! The cluster message set and its [`WireCodec`] encodings.
//!
//! Nine messages run the whole coordinator ⇄ worker protocol:
//!
//! | message                    | direction        | meaning                                        |
//! |----------------------------|------------------|------------------------------------------------|
//! | [`Hello`]                  | worker → coord   | liveness + identity, first frame on the wire   |
//! | [`AssignSessions`]         | coord → worker   | the worker's session subset + campaign config  |
//! | [`TickBarrier`]            | both             | advance-up-to-N-ticks / progress ack           |
//! | [`SessionReport`]          | worker → coord   | one session's full trace, bit-exact            |
//! | [`CacheStats`]             | worker → coord   | end-of-run model-cache + batching accounting   |
//! | [`Message::Shutdown`]      | coord → worker   | orderly exit                                   |
//! | [`Message::Error`]         | both             | typed failure, terminates the peer's run       |
//! | [`CheckpointFrame`]        | worker → coord   | engine checkpoint frame, sent before each ack  |
//! | [`ResumeSessions`]         | coord → worker   | re-assignment of a dead worker's sessions plus |
//! |                            |                  | the last good checkpoint to replay from        |
//!
//! Payload encodings are deterministic little-endian ([`WireCodec`]);
//! floats travel as IEEE-754 bit patterns, so the traces a coordinator
//! collects are **bit-identical** to the worker's in-memory traces — the
//! foundation of the cluster-equals-single-process digest guarantee.

use crate::wire::{Decoder, Encoder, WireCodec, WireError};
use vvd_dsp::{Complex, FirFilter};
use vvd_estimation::ModelCacheStats;
use vvd_phy::DecodeOutcome;
use vvd_serve::BatchCounters;

/// First frame a worker sends: proves the channel is alive and framed
/// correctly before any work is assigned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hello {
    /// The worker's OS process id (0 for in-process loopback workers).
    pub pid: u64,
}

/// One session assignment: the session's workload-global id plus its spec
/// fields (the worker rebuilds the `SessionSpec` verbatim).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AssignedSession {
    /// Workload-global session id (index into the full spec list).
    pub id: u64,
    /// Scenario spec string.
    pub scenario: String,
    /// Estimator spec string.
    pub estimator: String,
    /// Packet arrival period in ticks.
    pub interval_ticks: u64,
    /// First-arrival tick.
    pub offset_ticks: u64,
    /// Set-combination index.
    pub combination: u64,
}

/// The coordinator's work order: everything a worker needs to rebuild its
/// session subset bit-identically to the corresponding slice of the
/// single-process workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AssignSessions {
    /// Index of this worker in the cluster (0-based).
    pub worker_index: u32,
    /// Thread shards the worker's engine fans out over.
    pub shards: u32,
    /// Shared on-disk model cache directory, when the cluster uses one.
    pub cache_dir: Option<String>,
    /// The campaign/evaluation configuration, serialized as JSON
    /// (`vvd_testbed::EvalConfig`; serde's shortest-round-trip float
    /// formatting restores every `f64` bit-exactly).
    pub config_json: String,
    /// The assigned sessions, in ascending global-id order.
    pub sessions: Vec<AssignedSession>,
    /// When `true`, the worker sends a [`CheckpointFrame`] before every
    /// barrier ack (the ready ack included), giving the coordinator a
    /// resume point for crash recovery.
    pub checkpoints: bool,
    /// Whether the worker's engine runs the double-buffered tick pipeline
    /// (`ServeOptions::pipeline`).  Pure scheduling — the setting cannot
    /// change any reported bit — but the coordinator pins it explicitly so
    /// a cluster never mixes ambient per-process env defaults.
    pub pipeline: bool,
}

/// Coordinator → worker: advance your engine by up to `ticks` ticks.
/// Worker → coordinator: progress ack (`ticks` = total ticks processed so
/// far, `done` once the subset is drained).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TickBarrier {
    /// Tick budget (request) or cumulative ticks processed (ack).
    pub ticks: u64,
    /// Ack only: `true` once every assigned session has drained.
    pub done: bool,
}

/// One served session's complete outcome trace, bit-exact.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionReport {
    /// Workload-global session id.
    pub id: u64,
    /// Scenario spec of the session.
    pub scenario: String,
    /// Estimator label the session reports under.
    pub label: String,
    /// Packets streamed (warm-up included).
    pub packets_streamed: u64,
    /// Decode outcomes of scored, decodable packets.
    pub scored: Vec<DecodeOutcome>,
    /// One outcome per scored packet including skips.
    pub per_packet: Vec<DecodeOutcome>,
    /// The (phase-aligned) estimates used on scored packets.
    pub estimates: Vec<FirFilter>,
    /// The matching perfect CIRs.
    pub truths: Vec<FirFilter>,
}

/// End-of-run accounting a worker reports after its last session trace:
/// the worker-local model-cache counters (disk hits against the shared
/// directory included), batching counters and tick count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Ticks the worker's engine processed.
    pub ticks: u64,
    /// The worker's model-cache counters.
    pub cache: ModelCacheStats,
    /// The worker's inference-batching counters.
    pub batches: BatchCounters,
}

/// An engine checkpoint in transit: the worker's
/// [`EngineCheckpoint`](vvd_serve::EngineCheckpoint) already encoded as a
/// self-delimiting `VVDC` frame.  The coordinator keeps it opaque — it
/// only ever stores the latest frame per worker and hands it back in a
/// [`ResumeSessions`] — so the checkpoint layout can evolve without the
/// cluster protocol noticing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointFrame {
    /// The encoded checkpoint frame.
    pub frame: Vec<u8>,
}

/// The coordinator's crash-recovery order: the dead worker's original
/// assignment plus the last good checkpoint frame to resume from (`None`
/// when the worker died before its first checkpoint — the replacement
/// starts from scratch).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResumeSessions {
    /// The original assignment, verbatim.
    pub assign: AssignSessions,
    /// The last checkpoint frame the dead worker acked, if any.
    pub frame: Option<Vec<u8>>,
}

/// Every frame that travels between coordinator and worker.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Worker liveness + identity (first frame).
    Hello(Hello),
    /// The coordinator's work order.
    AssignSessions(AssignSessions),
    /// Tick-budget request / progress ack.
    TickBarrier(TickBarrier),
    /// One session's bit-exact trace.
    SessionReport(SessionReport),
    /// Worker end-of-run accounting.
    CacheStats(CacheStats),
    /// Orderly shutdown request.
    Shutdown,
    /// A typed failure report; the sender abandons its run.
    Error {
        /// Human-readable description of what failed.
        message: String,
    },
    /// An engine checkpoint frame (worker → coordinator, before each
    /// barrier ack when checkpoints are on).
    CheckpointFrame(CheckpointFrame),
    /// Crash recovery: re-assignment plus the checkpoint to resume from.
    ResumeSessions(ResumeSessions),
}

impl Message {
    /// The frame-header kind tag of this message.
    pub fn kind(&self) -> u16 {
        match self {
            Message::Hello(_) => 1,
            Message::AssignSessions(_) => 2,
            Message::TickBarrier(_) => 3,
            Message::SessionReport(_) => 4,
            Message::CacheStats(_) => 5,
            Message::Shutdown => 6,
            Message::Error { .. } => 7,
            Message::CheckpointFrame(_) => 8,
            Message::ResumeSessions(_) => 9,
        }
    }

    /// The message's name, for protocol-violation diagnostics.
    pub fn name(&self) -> &'static str {
        match self {
            Message::Hello(_) => "Hello",
            Message::AssignSessions(_) => "AssignSessions",
            Message::TickBarrier(_) => "TickBarrier",
            Message::SessionReport(_) => "SessionReport",
            Message::CacheStats(_) => "CacheStats",
            Message::Shutdown => "Shutdown",
            Message::Error { .. } => "Error",
            Message::CheckpointFrame(_) => "CheckpointFrame",
            Message::ResumeSessions(_) => "ResumeSessions",
        }
    }

    /// Encodes this message's payload (the frame body after the header).
    pub fn encode_payload(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        match self {
            Message::Hello(m) => m.encode(&mut enc),
            Message::AssignSessions(m) => m.encode(&mut enc),
            Message::TickBarrier(m) => m.encode(&mut enc),
            Message::SessionReport(m) => m.encode(&mut enc),
            Message::CacheStats(m) => m.encode(&mut enc),
            Message::Shutdown => {}
            Message::Error { message } => message.encode(&mut enc),
            Message::CheckpointFrame(m) => m.encode(&mut enc),
            Message::ResumeSessions(m) => m.encode(&mut enc),
        }
        enc.into_bytes()
    }

    /// Decodes a message from its frame `kind` tag and payload bytes.
    ///
    /// # Errors
    /// [`WireError::UnknownKind`] for an unrecognized tag, any payload
    /// decode error, or [`WireError::TrailingBytes`] when the payload is
    /// longer than the message.
    pub fn decode_payload(kind: u16, payload: &[u8]) -> Result<Self, WireError> {
        let mut dec = Decoder::new(payload);
        let msg = match kind {
            1 => Message::Hello(Hello::decode(&mut dec)?),
            2 => Message::AssignSessions(AssignSessions::decode(&mut dec)?),
            3 => Message::TickBarrier(TickBarrier::decode(&mut dec)?),
            4 => Message::SessionReport(SessionReport::decode(&mut dec)?),
            5 => Message::CacheStats(CacheStats::decode(&mut dec)?),
            6 => Message::Shutdown,
            7 => Message::Error {
                message: String::decode(&mut dec)?,
            },
            8 => Message::CheckpointFrame(CheckpointFrame::decode(&mut dec)?),
            9 => Message::ResumeSessions(ResumeSessions::decode(&mut dec)?),
            other => return Err(WireError::UnknownKind { found: other }),
        };
        dec.finish()?;
        Ok(msg)
    }
}

impl WireCodec for Hello {
    fn encode(&self, enc: &mut Encoder) {
        self.pid.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(Hello {
            pid: u64::decode(dec)?,
        })
    }
}

impl WireCodec for AssignedSession {
    fn encode(&self, enc: &mut Encoder) {
        self.id.encode(enc);
        self.scenario.encode(enc);
        self.estimator.encode(enc);
        self.interval_ticks.encode(enc);
        self.offset_ticks.encode(enc);
        self.combination.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(AssignedSession {
            id: u64::decode(dec)?,
            scenario: String::decode(dec)?,
            estimator: String::decode(dec)?,
            interval_ticks: u64::decode(dec)?,
            offset_ticks: u64::decode(dec)?,
            combination: u64::decode(dec)?,
        })
    }
}

impl WireCodec for AssignSessions {
    fn encode(&self, enc: &mut Encoder) {
        self.worker_index.encode(enc);
        self.shards.encode(enc);
        self.cache_dir.encode(enc);
        self.config_json.encode(enc);
        self.sessions.encode(enc);
        self.checkpoints.encode(enc);
        self.pipeline.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(AssignSessions {
            worker_index: u32::decode(dec)?,
            shards: u32::decode(dec)?,
            cache_dir: Option::<String>::decode(dec)?,
            config_json: String::decode(dec)?,
            sessions: Vec::<AssignedSession>::decode(dec)?,
            checkpoints: bool::decode(dec)?,
            pipeline: bool::decode(dec)?,
        })
    }
}

impl WireCodec for CheckpointFrame {
    fn encode(&self, enc: &mut Encoder) {
        self.frame.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(CheckpointFrame {
            frame: Vec::<u8>::decode(dec)?,
        })
    }
}

impl WireCodec for ResumeSessions {
    fn encode(&self, enc: &mut Encoder) {
        self.assign.encode(enc);
        self.frame.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(ResumeSessions {
            assign: AssignSessions::decode(dec)?,
            frame: Option::<Vec<u8>>::decode(dec)?,
        })
    }
}

impl WireCodec for TickBarrier {
    fn encode(&self, enc: &mut Encoder) {
        self.ticks.encode(enc);
        self.done.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(TickBarrier {
            ticks: u64::decode(dec)?,
            done: bool::decode(dec)?,
        })
    }
}

impl WireCodec for DecodeOutcome {
    fn encode(&self, enc: &mut Encoder) {
        self.crc_ok.encode(enc);
        self.chip_errors.encode(enc);
        self.chip_count.encode(enc);
        self.symbol_errors.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(DecodeOutcome {
            crc_ok: bool::decode(dec)?,
            chip_errors: usize::decode(dec)?,
            chip_count: usize::decode(dec)?,
            symbol_errors: usize::decode(dec)?,
        })
    }
}

impl WireCodec for FirFilter {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u32(self.len() as u32);
        for tap in self.taps().iter() {
            tap.re.encode(enc);
            tap.im.encode(enc);
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        let len = dec.take_u32("filter tap count")? as usize;
        let mut taps = Vec::new();
        for _ in 0..len {
            taps.push(Complex::new(f64::decode(dec)?, f64::decode(dec)?));
        }
        Ok(FirFilter::from_taps(&taps))
    }
}

impl WireCodec for SessionReport {
    fn encode(&self, enc: &mut Encoder) {
        self.id.encode(enc);
        self.scenario.encode(enc);
        self.label.encode(enc);
        self.packets_streamed.encode(enc);
        self.scored.encode(enc);
        self.per_packet.encode(enc);
        self.estimates.encode(enc);
        self.truths.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(SessionReport {
            id: u64::decode(dec)?,
            scenario: String::decode(dec)?,
            label: String::decode(dec)?,
            packets_streamed: u64::decode(dec)?,
            scored: Vec::<DecodeOutcome>::decode(dec)?,
            per_packet: Vec::<DecodeOutcome>::decode(dec)?,
            estimates: Vec::<FirFilter>::decode(dec)?,
            truths: Vec::<FirFilter>::decode(dec)?,
        })
    }
}

impl WireCodec for CacheStats {
    fn encode(&self, enc: &mut Encoder) {
        self.ticks.encode(enc);
        self.cache.hits.encode(enc);
        self.cache.disk_hits.encode(enc);
        self.cache.misses.encode(enc);
        self.cache.evictions.encode(enc);
        self.cache.entries.encode(enc);
        self.batches.batch_calls.encode(enc);
        self.batches.images.encode(enc);
        self.batches.max_batch.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(CacheStats {
            ticks: u64::decode(dec)?,
            cache: ModelCacheStats {
                hits: u64::decode(dec)?,
                disk_hits: u64::decode(dec)?,
                misses: u64::decode(dec)?,
                evictions: u64::decode(dec)?,
                entries: usize::decode(dec)?,
            },
            batches: BatchCounters {
                batch_calls: u64::decode(dec)?,
                images: u64::decode(dec)?,
                max_batch: usize::decode(dec)?,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_messages() -> Vec<Message> {
        vec![
            Message::Hello(Hello { pid: 4242 }),
            Message::AssignSessions(AssignSessions {
                worker_index: 2,
                shards: 4,
                cache_dir: Some("/tmp/cache".into()),
                config_json: "{\"n_sets\":3}".into(),
                sessions: vec![AssignedSession {
                    id: 7,
                    scenario: "rician:k=6,doppler=30".into(),
                    estimator: "fallback:preamble,vvd:current".into(),
                    interval_ticks: 3,
                    offset_ticks: 1,
                    combination: 0,
                }],
                checkpoints: true,
                pipeline: true,
            }),
            Message::TickBarrier(TickBarrier {
                ticks: 16,
                done: false,
            }),
            Message::SessionReport(SessionReport {
                id: 7,
                scenario: "paper".into(),
                label: "VVD".into(),
                packets_streamed: 24,
                scored: vec![DecodeOutcome {
                    crc_ok: true,
                    chip_errors: 3,
                    chip_count: 1024,
                    symbol_errors: 1,
                }],
                per_packet: vec![],
                estimates: vec![FirFilter::from_taps(&[
                    Complex::new(1.25e-3, -7.5e-4),
                    Complex::new(-0.0, f64::MIN_POSITIVE),
                ])],
                truths: vec![FirFilter::from_taps(&[Complex::new(0.5, 0.25)])],
            }),
            Message::CacheStats(CacheStats {
                ticks: 99,
                cache: ModelCacheStats {
                    hits: 5,
                    disk_hits: 2,
                    misses: 1,
                    evictions: 0,
                    entries: 3,
                },
                batches: BatchCounters {
                    batch_calls: 10,
                    images: 63,
                    max_batch: 8,
                },
            }),
            Message::Shutdown,
            Message::Error {
                message: "nope".into(),
            },
            Message::CheckpointFrame(CheckpointFrame {
                frame: vec![b'V', b'V', b'D', b'C', 1, 0, 0, 0, 0, 0, 255],
            }),
            Message::ResumeSessions(ResumeSessions {
                assign: AssignSessions {
                    worker_index: 0,
                    shards: 1,
                    cache_dir: None,
                    config_json: "{}".into(),
                    sessions: vec![],
                    checkpoints: true,
                    pipeline: false,
                },
                frame: Some(vec![0xde, 0xad]),
            }),
        ]
    }

    #[test]
    fn every_message_round_trips_bit_exactly() {
        for msg in sample_messages() {
            let payload = msg.encode_payload();
            let decoded = Message::decode_payload(msg.kind(), &payload).unwrap();
            assert_eq!(decoded, msg, "{} must round-trip", msg.name());
        }
    }

    #[test]
    fn kinds_are_distinct_and_names_stable() {
        let msgs = sample_messages();
        let mut kinds: Vec<u16> = msgs.iter().map(Message::kind).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), msgs.len(), "kind tags must be unique");
        assert!(matches!(
            Message::decode_payload(0xFFFF, &[]),
            Err(WireError::UnknownKind { found: 0xFFFF })
        ));
    }

    #[test]
    fn trailing_bytes_after_a_payload_are_rejected() {
        let msg = Message::TickBarrier(TickBarrier {
            ticks: 1,
            done: true,
        });
        let mut payload = msg.encode_payload();
        payload.push(0);
        assert!(matches!(
            Message::decode_payload(msg.kind(), &payload),
            Err(WireError::TrailingBytes { extra: 1 })
        ));
    }

    #[test]
    fn truncated_session_reports_fail_typed_at_every_cut() {
        let msg = sample_messages().remove(3);
        let payload = msg.encode_payload();
        for cut in 0..payload.len() {
            let err = Message::decode_payload(msg.kind(), &payload[..cut])
                .expect_err("every strict prefix must fail to decode");
            assert!(
                matches!(
                    err,
                    WireError::Truncated { .. } | WireError::Malformed { .. }
                ),
                "cut at {cut}: unexpected error {err:?}"
            );
        }
    }
}
