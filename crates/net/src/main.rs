//! `vvd-worker` — the spawnable worker process of a vvd-net serve
//! cluster.
//!
//! The binary speaks the framed cluster protocol on stdin/stdout (frames
//! only — diagnostics go to stderr) and exits non-zero on any protocol or
//! workload failure.  It is spawned by a coordinator via
//! [`WorkerBackend::Binary`](vvd_net::WorkerBackend); it does nothing
//! useful when run by hand.

#![deny(missing_docs)]
#![deny(unsafe_code)]

fn main() {
    if let Err(e) = vvd_net::run_stdio_worker() {
        eprintln!("vvd-worker: {e}");
        std::process::exit(1);
    }
}
