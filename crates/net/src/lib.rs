//! # vvd-net
//!
//! Cross-process serving for the Veni Vidi Dixi reproduction: a
//! coordinator partitions a multi-link serve workload over worker
//! *processes* and merges their traces into one report that is
//! **bit-identical** to the single-process run — the same
//! any-topology-invisible guarantee the serve engine gives for threads,
//! extended across process boundaries.
//!
//! Layers, bottom up:
//!
//! * [`wire`] — a dependency-free framed wire protocol: length-prefixed
//!   binary frames (`magic · version · kind · len`), a deterministic
//!   little-endian [`WireCodec`] for every payload type (floats travel as
//!   IEEE-754 bit patterns), and typed [`WireError`]s for every way a
//!   stream can be truncated, corrupted or oversized — decoding never
//!   panics and never allocates from an untrusted length.
//! * [`message`] — the nine-message cluster protocol
//!   ([`Hello`](message::Hello) … [`Message::Shutdown`]), including the
//!   checkpoint/resume pair ([`CheckpointFrame`](message::CheckpointFrame),
//!   [`ResumeSessions`](message::ResumeSessions)) behind crash recovery.
//! * [`transport`] — who carries the frames: in-process loopback channel
//!   pairs, worker-side stdio, coordinator-side child processes.
//! * [`worker`] / [`cluster`] — the two protocol roles: a worker wraps a
//!   stepping [`ServeEngine`](vvd_serve::ServeEngine) over its assigned
//!   session subset; the coordinator ([`serve_cluster`]) partitions
//!   round-robin, staggers fits so a shared disk model cache trains every
//!   distinct model exactly once cluster-wide, drives tick barriers and
//!   merges traces in global session order.  With checkpoints on
//!   ([`ClusterOptions::checkpoints`]), every barrier ack carries a
//!   checkpoint frame and a worker that dies mid-stream is respawned and
//!   resumed from its last acked checkpoint — the merged digest is still
//!   bit-identical to the uninterrupted run.
//!
//! Cluster sizing follows `VVD_PROCS` × `VVD_WORKERS`
//! ([`vvd_dsp::proc_budget`] / [`vvd_dsp::per_process_worker_budget`]).
//! The `vvd-worker` binary in this crate is the spawnable worker; any
//! coordinator binary can instead be its own worker fleet via
//! [`maybe_run_worker`] + [`WorkerBackend::SelfExec`].

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod cluster;
pub mod message;
pub mod transport;
pub mod wire;
pub mod worker;

pub use cluster::{
    serve_cluster, serve_cluster_detailed, ClusterError, ClusterOptions, ClusterRun, InjectedFault,
    WorkerBackend,
};
pub use message::Message;
pub use transport::{loopback_pair, ChildTransport, StdioTransport, Transport};
pub use wire::{WireCodec, WireError};
pub use worker::{maybe_run_worker, run_stdio_worker, run_worker, WORKER_ARG};
