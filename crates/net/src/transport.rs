//! Message transports: who carries the frames.
//!
//! A [`Transport`] moves whole [`Message`]s; the framing itself lives in
//! [`crate::wire`].  Three carriers share that one code path:
//!
//! * [`loopback_pair`] — an in-process channel pair.  Both ends run the
//!   real encoder/framer over byte streams, so loopback tests exercise
//!   exactly the bytes a pipe would carry — only the OS pipe is elided.
//! * [`StdioTransport`] — the worker side of a real process pair: frames
//!   arrive on stdin and leave on stdout.
//! * [`ChildTransport`] — the coordinator side: spawns a worker process
//!   with piped stdio and frames the pipe ends.
//!
//! Every transport is strictly blocking and sequential — the cluster
//! protocol is a lock-step barrier dance, so nothing here needs async
//! machinery or reordering.

use crate::message::Message;
use crate::wire::{read_frame, write_frame, WireError};
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::process::{Child, ChildStdin, ChildStdout, Command, ExitStatus, Stdio};
use std::sync::mpsc;

/// A bidirectional, blocking carrier of [`Message`]s.
pub trait Transport {
    /// Sends one message, flushing it onto the wire.
    ///
    /// # Errors
    /// [`WireError::Io`] when the peer is gone or the pipe broke, or
    /// [`WireError::FrameTooLarge`] for an over-budget payload.
    fn send(&mut self, msg: &Message) -> Result<(), WireError>;

    /// Receives the next message, blocking until one arrives.
    ///
    /// # Errors
    /// [`WireError::Closed`] on a clean end-of-stream between frames; any
    /// framing/decoding error for a corrupt or truncated stream.
    fn recv(&mut self) -> Result<Message, WireError>;
}

/// A transport over any pair of byte streams.
pub struct StreamTransport<R: Read, W: Write> {
    reader: R,
    writer: W,
}

impl<R: Read, W: Write> StreamTransport<R, W> {
    /// Frames the given byte streams.
    pub fn new(reader: R, writer: W) -> Self {
        StreamTransport { reader, writer }
    }
}

impl<R: Read, W: Write> Transport for StreamTransport<R, W> {
    fn send(&mut self, msg: &Message) -> Result<(), WireError> {
        write_frame(&mut self.writer, msg.kind(), &msg.encode_payload())
    }

    fn recv(&mut self) -> Result<Message, WireError> {
        let (kind, payload) = read_frame(&mut self.reader)?;
        Message::decode_payload(kind, &payload)
    }
}

/// The reading half of an in-process byte channel.
pub struct ChannelReader {
    rx: mpsc::Receiver<Vec<u8>>,
    pending: Vec<u8>,
    pos: usize,
}

impl Read for ChannelReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        while self.pos >= self.pending.len() {
            match self.rx.recv() {
                Ok(chunk) => {
                    self.pending = chunk;
                    self.pos = 0;
                }
                // Sender dropped: clean end-of-stream.
                Err(mpsc::RecvError) => return Ok(0),
            }
        }
        let n = buf.len().min(self.pending.len() - self.pos);
        buf[..n].copy_from_slice(&self.pending[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// The writing half of an in-process byte channel.
pub struct ChannelWriter {
    tx: mpsc::Sender<Vec<u8>>,
}

impl Write for ChannelWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.tx
            .send(buf.to_vec())
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "loopback peer dropped"))?;
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// An in-process transport end (one side of a [`loopback_pair`]).
pub type LoopbackTransport = StreamTransport<ChannelReader, ChannelWriter>;

/// A connected pair of in-process transports: what one end sends, the
/// other receives.  Dropping an end closes the peer's stream cleanly
/// ([`WireError::Closed`] on the next `recv`).
pub fn loopback_pair() -> (LoopbackTransport, LoopbackTransport) {
    let (tx_ab, rx_ab) = mpsc::channel();
    let (tx_ba, rx_ba) = mpsc::channel();
    let a = StreamTransport::new(
        ChannelReader {
            rx: rx_ba,
            pending: Vec::new(),
            pos: 0,
        },
        ChannelWriter { tx: tx_ab },
    );
    let b = StreamTransport::new(
        ChannelReader {
            rx: rx_ab,
            pending: Vec::new(),
            pos: 0,
        },
        ChannelWriter { tx: tx_ba },
    );
    (a, b)
}

/// The worker-process side of a stdio pipe pair: frames arrive on stdin,
/// leave on stdout.  Everything human-readable a worker wants to say goes
/// to stderr — stdout carries nothing but frames.
pub struct StdioTransport {
    inner: StreamTransport<BufReader<io::Stdin>, BufWriter<io::Stdout>>,
}

impl StdioTransport {
    /// Frames this process's stdin/stdout.
    pub fn new() -> Self {
        StdioTransport {
            inner: StreamTransport::new(BufReader::new(io::stdin()), BufWriter::new(io::stdout())),
        }
    }
}

impl Default for StdioTransport {
    fn default() -> Self {
        Self::new()
    }
}

impl Transport for StdioTransport {
    fn send(&mut self, msg: &Message) -> Result<(), WireError> {
        self.inner.send(msg)
    }

    fn recv(&mut self) -> Result<Message, WireError> {
        self.inner.recv()
    }
}

/// The coordinator side of a worker process: owns the [`Child`] and frames
/// its piped stdin/stdout.  Dropping the transport kills the child (best
/// effort) so an aborted coordinator never leaks worker processes; the
/// orderly path is [`finish`](Self::finish).
pub struct ChildTransport {
    child: Child,
    reader: BufReader<ChildStdout>,
    writer: Option<BufWriter<ChildStdin>>,
}

impl ChildTransport {
    /// Spawns `cmd` with piped stdin/stdout (stderr is inherited, so
    /// worker diagnostics reach the operator's terminal).
    ///
    /// # Errors
    /// Any spawn failure, verbatim.
    pub fn spawn(cmd: &mut Command) -> io::Result<Self> {
        let mut child = cmd.stdin(Stdio::piped()).stdout(Stdio::piped()).spawn()?;
        let stdin = child
            .stdin
            .take()
            .expect("piped stdin is present on a just-spawned child");
        let stdout = child
            .stdout
            .take()
            .expect("piped stdout is present on a just-spawned child");
        Ok(ChildTransport {
            child,
            reader: BufReader::new(stdout),
            writer: Some(BufWriter::new(stdin)),
        })
    }

    /// Closes the child's stdin (it sees end-of-stream) and waits for it
    /// to exit.
    ///
    /// # Errors
    /// The underlying `wait` failure, verbatim.
    pub fn finish(mut self) -> io::Result<ExitStatus> {
        self.writer.take();
        self.child.wait()
    }

    /// Kills the child immediately, mid-protocol — the deterministic
    /// fault-injection hook behind
    /// [`InjectedFault`](crate::InjectedFault): the coordinator calls
    /// this at an exact tick barrier, so a "crash" happens at the same
    /// protocol point on every run.  After this, `send` reports
    /// [`WireError::Closed`] and `recv` reports the broken stream.
    pub fn kill(&mut self) {
        self.writer.take();
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for ChildTransport {
    fn drop(&mut self) {
        // After an orderly `finish` the child is already reaped and both
        // calls are no-ops/errors we deliberately ignore; on an abort path
        // this reaps the worker instead of leaking it.
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Transport for ChildTransport {
    fn send(&mut self, msg: &Message) -> Result<(), WireError> {
        match self.writer.as_mut() {
            Some(w) => write_frame(w, msg.kind(), &msg.encode_payload()),
            None => Err(WireError::Closed),
        }
    }

    fn recv(&mut self) -> Result<Message, WireError> {
        let (kind, payload) = read_frame(&mut self.reader)?;
        Message::decode_payload(kind, &payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{Hello, TickBarrier};

    #[test]
    fn loopback_carries_messages_both_ways() {
        let (mut a, mut b) = loopback_pair();
        a.send(&Message::Hello(Hello { pid: 1 })).unwrap();
        a.send(&Message::TickBarrier(TickBarrier {
            ticks: 9,
            done: true,
        }))
        .unwrap();
        assert_eq!(b.recv().unwrap(), Message::Hello(Hello { pid: 1 }));
        b.send(&Message::Shutdown).unwrap();
        assert_eq!(
            b.recv().unwrap(),
            Message::TickBarrier(TickBarrier {
                ticks: 9,
                done: true
            })
        );
        assert_eq!(a.recv().unwrap(), Message::Shutdown);
    }

    #[test]
    fn dropping_an_end_closes_the_peer_cleanly() {
        let (a, mut b) = loopback_pair();
        drop(a);
        assert!(matches!(b.recv(), Err(WireError::Closed)));
        assert!(matches!(b.send(&Message::Shutdown), Err(WireError::Io(_))));
    }

    #[test]
    fn loopback_reader_handles_split_reads() {
        // Frames split across arbitrarily small reads must reassemble —
        // the reader loops over chunk boundaries.
        let (mut a, b) = loopback_pair();
        a.send(&Message::Error {
            message: "x".repeat(10_000),
        })
        .unwrap();
        drop(a);
        let mut reader = b.reader;
        let mut bytes = Vec::new();
        let mut one = [0u8; 1];
        while reader.read(&mut one).unwrap() == 1 {
            bytes.push(one[0]);
        }
        let (kind, payload) = read_frame(&mut bytes.as_slice()).unwrap();
        let msg = Message::decode_payload(kind, &payload).unwrap();
        assert_eq!(
            msg,
            Message::Error {
                message: "x".repeat(10_000)
            }
        );
    }
}
