//! The worker side of the cluster protocol.
//!
//! A worker is a protocol loop around one [`ServeEngine`]: it announces
//! itself, receives its session subset, rebuilds exactly that slice of the
//! workload ([`LoadGenerator::build_assigned`] preserves workload-global
//! session ids, so the traces it will report are bit-identical to the
//! corresponding sessions of a single-process run), then advances the
//! engine between the coordinator's tick barriers and streams its traces
//! back once drained.
//!
//! The fit happens *before* the ready ack — the coordinator assigns
//! workers one at a time and waits for each ready ack, so with a shared
//! on-disk model cache every distinct training runs exactly once
//! cluster-wide: the first worker to need a model trains and publishes it,
//! every later worker loads it from disk.

use crate::message::{AssignSessions, CacheStats, CheckpointFrame, Hello, Message, TickBarrier};
use crate::transport::{StdioTransport, Transport};
use crate::wire::WireError;
use vvd_estimation::ModelCache;
use vvd_serve::{EngineCheckpoint, LoadGenerator, ServeEngine, ServeOptions, SessionSpec};
use vvd_testbed::EvalConfig;

/// Argument sentinel that switches a self-executing binary into worker
/// mode (see [`maybe_run_worker`]).
pub const WORKER_ARG: &str = "vvd-net-worker";

/// Runs the worker protocol over the given transport until the
/// coordinator shuts it down.
///
/// # Errors
/// Any transport failure, or [`WireError::Protocol`] when the coordinator
/// violates the protocol or the assigned workload fails to build (the
/// failure is also reported to the coordinator as a [`Message::Error`]
/// frame when the transport still works).
pub fn run_worker<T: Transport>(transport: &mut T) -> Result<(), WireError> {
    transport.send(&Message::Hello(Hello {
        pid: u64::from(std::process::id()),
    }))?;

    // A fresh assignment or a crash-recovery re-assignment (the original
    // assignment plus the last good checkpoint frame to replay from).
    let (assign, resume_frame) = match transport.recv()? {
        Message::AssignSessions(a) => (a, None),
        Message::ResumeSessions(resume) => (resume.assign, resume.frame),
        Message::Shutdown => return Ok(()),
        other => {
            return Err(protocol_violation("AssignSessions", &other));
        }
    };

    let mut engine = match build_engine(&assign, resume_frame.as_deref()) {
        Ok(engine) => engine,
        Err(message) => {
            transport.send(&Message::Error {
                message: message.clone(),
            })?;
            return Err(WireError::Protocol(message));
        }
    };

    // Ready ack: the fit is done (every assigned model trained or loaded).
    // With checkpoints on, every barrier ack — this one included — is
    // preceded by a checkpoint frame, so the coordinator always holds a
    // resume point exactly as fresh as the progress it has acked.
    if assign.checkpoints {
        send_checkpoint(transport, &engine)?;
    }
    transport.send(&Message::TickBarrier(TickBarrier {
        ticks: engine.ticks(),
        done: engine.finished(),
    }))?;

    while !engine.finished() {
        match transport.recv()? {
            Message::TickBarrier(barrier) => {
                engine.run_ticks(barrier.ticks.max(1));
                if assign.checkpoints {
                    send_checkpoint(transport, &engine)?;
                }
                transport.send(&Message::TickBarrier(TickBarrier {
                    ticks: engine.ticks(),
                    done: engine.finished(),
                }))?;
            }
            // An early shutdown aborts the run without reporting.
            Message::Shutdown => return Ok(()),
            other => return Err(protocol_violation("TickBarrier", &other)),
        }
    }

    // Drained: stream one report per session (ascending global id — the
    // subset order build_assigned preserved), then the run accounting.
    let report = engine.finish();
    for (summary, trace) in report.sessions.iter().zip(&report.traces) {
        transport.send(&Message::SessionReport(crate::message::SessionReport {
            id: summary.session_id as u64,
            scenario: summary.scenario.clone(),
            label: trace.label.clone(),
            packets_streamed: summary.packets_streamed as u64,
            scored: trace.scored.clone(),
            per_packet: trace.per_packet.clone(),
            estimates: trace.estimates.clone(),
            truths: trace.truths.clone(),
        }))?;
    }
    transport.send(&Message::CacheStats(CacheStats {
        ticks: report.ticks,
        cache: report.model_cache,
        batches: report.batches,
    }))?;

    match transport.recv()? {
        Message::Shutdown => Ok(()),
        other => Err(protocol_violation("Shutdown", &other)),
    }
}

/// Runs the worker protocol over this process's stdin/stdout — the body
/// of the `vvd-worker` binary.
///
/// # Errors
/// See [`run_worker`].
pub fn run_stdio_worker() -> Result<(), WireError> {
    let mut transport = StdioTransport::new();
    run_worker(&mut transport)
}

/// Self-exec guard for coordinator binaries (examples, benches): when the
/// process was invoked with [`WORKER_ARG`] as its first argument, runs the
/// stdio worker protocol and **exits the process** — never returning to
/// the caller.  Call this first in `main` to make the binary its own
/// worker under [`WorkerBackend::SelfExec`](crate::WorkerBackend).
pub fn maybe_run_worker() {
    let mut argv = std::env::args();
    let _program = argv.next();
    if argv.next().as_deref() == Some(WORKER_ARG) {
        let code = match run_stdio_worker() {
            Ok(()) => 0,
            Err(e) => {
                eprintln!("vvd-worker: {e}");
                1
            }
        };
        std::process::exit(code);
    }
}

/// Snapshots the engine and ships the frame ahead of a barrier ack.
fn send_checkpoint<T: Transport>(transport: &mut T, engine: &ServeEngine) -> Result<(), WireError> {
    match engine.checkpoint() {
        Ok(checkpoint) => transport.send(&Message::CheckpointFrame(CheckpointFrame {
            frame: checkpoint.to_frame(),
        })),
        Err(e) => {
            let message = format!("checkpoint failed: {e}");
            transport.send(&Message::Error {
                message: message.clone(),
            })?;
            Err(WireError::Protocol(message))
        }
    }
}

/// Rebuilds the assigned workload slice and wraps it in a stepping engine
/// — from scratch, or resumed from a checkpoint frame when recovering a
/// dead worker's sessions.
fn build_engine(
    assign: &AssignSessions,
    resume_frame: Option<&[u8]>,
) -> Result<ServeEngine, String> {
    let config: EvalConfig = serde_json::from_str(&assign.config_json)
        .map_err(|e| format!("invalid campaign config: {e}"))?;

    let mut cache = ModelCache::new();
    if let Some(dir) = &assign.cache_dir {
        cache = cache.with_disk_dir(dir);
    }

    let assigned: Vec<(usize, SessionSpec)> = assign
        .sessions
        .iter()
        .map(|s| {
            (
                s.id as usize,
                SessionSpec {
                    scenario: s.scenario.clone(),
                    estimator: s.estimator.clone(),
                    interval_ticks: s.interval_ticks,
                    offset_ticks: s.offset_ticks,
                    combination: s.combination as usize,
                },
            )
        })
        .collect();

    let workload = LoadGenerator::new(config)
        .build_assigned(&assigned, cache)
        .map_err(|e| format!("workload build failed: {e}"))?;

    let options = ServeOptions {
        shards: assign.shards.max(1) as usize,
        pipeline: assign.pipeline,
    };
    match resume_frame {
        None => Ok(ServeEngine::new(workload, &options)),
        Some(bytes) => {
            let checkpoint = EngineCheckpoint::from_frame(bytes)
                .map_err(|e| format!("checkpoint frame decode failed: {e}"))?;
            ServeEngine::resume(workload, &options, &checkpoint)
                .map_err(|e| format!("resume from checkpoint failed: {e}"))
        }
    }
}

fn protocol_violation(expected: &str, got: &Message) -> WireError {
    match got {
        Message::Error { message } => {
            WireError::Protocol(format!("peer reported an error: {message}"))
        }
        other => WireError::Protocol(format!("expected {expected}, got {}", other.name())),
    }
}
