//! The framed wire layer: a dependency-free, length-prefixed binary codec.
//!
//! Every message travels as one **frame**:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  = b"VVDN"
//! 4       2     protocol version (little-endian u16, currently 1)
//! 6       2     message kind     (little-endian u16)
//! 8       4     payload length   (little-endian u32, <= MAX_FRAME_PAYLOAD)
//! 12      n     payload          (message body, [`WireCodec`]-encoded)
//! ```
//!
//! All integers are little-endian; floats travel as their IEEE-754 bit
//! patterns ([`f64::to_bits`]), so a decoded value is *bit-identical* to
//! the encoded one — the property that lets a coordinator merge worker
//! traces into a report whose digest matches the in-process run exactly.
//!
//! # Robustness
//!
//! Decoding malformed input **never panics and never hangs**: truncated
//! frames, oversized length prefixes, bad magic/version bytes, unknown
//! message kinds, mid-frame EOF and trailing garbage all surface as typed
//! [`WireError`]s (pinned by the adversarial-decode proptest suite).  An
//! oversized length prefix is rejected *before* any allocation, and
//! length-prefixed collections are decoded element by element, so a frame
//! cannot force an allocation larger than the frame itself.

use std::fmt;
use std::io::{Read, Write};

/// Frame magic: the first four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"VVDN";

/// Version of the wire protocol (frame header field).
pub const PROTOCOL_VERSION: u16 = 1;

/// Upper bound on a frame's payload size (64 MiB).  Large enough for any
/// serve trace the workspace produces, small enough that a corrupt or
/// hostile length prefix cannot drive an enormous allocation.
pub const MAX_FRAME_PAYLOAD: u32 = 64 * 1024 * 1024;

/// Everything that can go wrong on the wire.  Every decode failure is a
/// typed error — malformed input never panics.
#[derive(Debug)]
pub enum WireError {
    /// The underlying byte stream failed.
    Io(std::io::Error),
    /// The peer closed the stream cleanly between frames.
    Closed,
    /// The stream ended in the middle of a frame header or payload.
    Truncated {
        /// What was being read when the stream ended.
        context: &'static str,
    },
    /// The frame did not start with [`MAGIC`].
    BadMagic {
        /// The four bytes actually found.
        found: [u8; 4],
    },
    /// The frame header named a protocol version this build does not
    /// speak.
    UnsupportedVersion {
        /// The version actually found.
        found: u16,
    },
    /// The frame header named a message kind this build does not know.
    UnknownKind {
        /// The kind tag actually found.
        found: u16,
    },
    /// The length prefix exceeded [`MAX_FRAME_PAYLOAD`].
    FrameTooLarge {
        /// The length the header claimed.
        len: u64,
    },
    /// A payload field was structurally invalid (bad bool byte, invalid
    /// UTF-8, out-of-range enum tag, …).
    Malformed {
        /// Which field was malformed.
        context: &'static str,
    },
    /// The payload decoded cleanly but left unconsumed bytes behind.
    TrailingBytes {
        /// How many bytes were left over.
        extra: usize,
    },
    /// The peer violated the message protocol (unexpected message order),
    /// or reported a failure of its own.
    Protocol(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire I/O error: {e}"),
            WireError::Closed => write!(f, "peer closed the stream"),
            WireError::Truncated { context } => {
                write!(f, "stream ended mid-frame while reading {context}")
            }
            WireError::BadMagic { found } => {
                write!(f, "bad frame magic {found:02x?} (expected {MAGIC:02x?})")
            }
            WireError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported protocol version {found} (this build speaks {PROTOCOL_VERSION})"
                )
            }
            WireError::UnknownKind { found } => write!(f, "unknown message kind {found}"),
            WireError::FrameTooLarge { len } => {
                write!(
                    f,
                    "frame payload of {len} bytes exceeds the {MAX_FRAME_PAYLOAD}-byte cap"
                )
            }
            WireError::Malformed { context } => write!(f, "malformed payload field: {context}"),
            WireError::TrailingBytes { extra } => {
                write!(f, "payload decoded with {extra} trailing bytes")
            }
            WireError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// Encoding buffer: the write half of [`WireCodec`].
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// An empty encoder.
    pub fn new() -> Self {
        Encoder::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends raw bytes verbatim.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
}

/// Decoding cursor over a frame payload: the read half of [`WireCodec`].
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// A cursor over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Consumes exactly `n` bytes.
    ///
    /// # Errors
    /// [`WireError::Truncated`] when fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated { context });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Consumes one byte.
    ///
    /// # Errors
    /// [`WireError::Truncated`] at end of input.
    pub fn take_u8(&mut self, context: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, context)?[0])
    }

    /// Consumes a little-endian `u16`.
    ///
    /// # Errors
    /// [`WireError::Truncated`] when fewer than 2 bytes remain.
    pub fn take_u16(&mut self, context: &'static str) -> Result<u16, WireError> {
        let b = self.take(2, context)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Consumes a little-endian `u32`.
    ///
    /// # Errors
    /// [`WireError::Truncated`] when fewer than 4 bytes remain.
    pub fn take_u32(&mut self, context: &'static str) -> Result<u32, WireError> {
        let b = self.take(4, context)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Consumes a little-endian `u64`.
    ///
    /// # Errors
    /// [`WireError::Truncated`] when fewer than 8 bytes remain.
    pub fn take_u64(&mut self, context: &'static str) -> Result<u64, WireError> {
        let b = self.take(8, context)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Fails with [`WireError::TrailingBytes`] unless the cursor consumed
    /// everything.
    ///
    /// # Errors
    /// [`WireError::TrailingBytes`] when unconsumed bytes remain.
    pub fn finish(&self) -> Result<(), WireError> {
        if self.remaining() > 0 {
            Err(WireError::TrailingBytes {
                extra: self.remaining(),
            })
        } else {
            Ok(())
        }
    }
}

/// Deterministic binary encode/decode of one wire value.
///
/// The layout contract: `decode(encode(x)) == x` bit-for-bit, the byte
/// stream is identical across platforms (little-endian integers, IEEE-754
/// bit patterns for floats), and `decode` of arbitrary bytes returns a
/// typed [`WireError`] — never panics, never over-allocates beyond the
/// input's own length.
pub trait WireCodec: Sized {
    /// Appends this value's canonical encoding.
    fn encode(&self, enc: &mut Encoder);

    /// Decodes one value from the cursor.
    ///
    /// # Errors
    /// A typed [`WireError`] on truncated or structurally invalid input.
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError>;
}

impl WireCodec for bool {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(u8::from(*self));
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        match dec.take_u8("bool")? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Malformed {
                context: "bool byte not 0/1",
            }),
        }
    }
}

impl WireCodec for u8 {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(*self);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        dec.take_u8("u8")
    }
}

impl WireCodec for u32 {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u32(*self);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        dec.take_u32("u32")
    }
}

impl WireCodec for u64 {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(*self);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        dec.take_u64("u64")
    }
}

impl WireCodec for usize {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(*self as u64);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        usize::try_from(dec.take_u64("usize")?).map_err(|_| WireError::Malformed {
            context: "usize exceeds this platform's pointer width",
        })
    }
}

impl WireCodec for f64 {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.to_bits());
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(f64::from_bits(dec.take_u64("f64")?))
    }
}

impl WireCodec for String {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u32(self.len() as u32);
        enc.put_bytes(self.as_bytes());
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        let len = dec.take_u32("string length")? as usize;
        let bytes = dec.take(len, "string bytes")?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Malformed {
            context: "string is not valid UTF-8",
        })
    }
}

impl<T: WireCodec> WireCodec for Option<T> {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            None => enc.put_u8(0),
            Some(v) => {
                enc.put_u8(1);
                v.encode(enc);
            }
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        match dec.take_u8("option tag")? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(dec)?)),
            _ => Err(WireError::Malformed {
                context: "option tag not 0/1",
            }),
        }
    }
}

impl<T: WireCodec> WireCodec for Vec<T> {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u32(self.len() as u32);
        for item in self {
            item.encode(enc);
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        let len = dec.take_u32("vec length")? as usize;
        // No up-front reservation from the (untrusted) length prefix: a
        // hostile count larger than the payload fails at the first
        // truncated element instead of forcing a huge allocation.
        let mut out = Vec::new();
        for _ in 0..len {
            out.push(T::decode(dec)?);
        }
        Ok(out)
    }
}

/// Writes one frame (`kind` + encoded payload) to `w`, flushing it.
///
/// # Errors
/// [`WireError::Io`] when the underlying stream fails, or
/// [`WireError::FrameTooLarge`] for an over-cap payload.
pub fn write_frame(w: &mut impl Write, kind: u16, payload: &[u8]) -> Result<(), WireError> {
    if payload.len() as u64 > u64::from(MAX_FRAME_PAYLOAD) {
        return Err(WireError::FrameTooLarge {
            len: payload.len() as u64,
        });
    }
    let mut header = [0u8; 12];
    header[0..4].copy_from_slice(&MAGIC);
    header[4..6].copy_from_slice(&PROTOCOL_VERSION.to_le_bytes());
    header[6..8].copy_from_slice(&kind.to_le_bytes());
    header[8..12].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame from `r`, returning `(kind, payload)`.
///
/// A clean EOF *between* frames is [`WireError::Closed`]; an EOF anywhere
/// inside a frame is [`WireError::Truncated`].  The payload length is
/// validated against [`MAX_FRAME_PAYLOAD`] before any allocation.
///
/// # Errors
/// Typed [`WireError`]s for every I/O, framing or size failure.
pub fn read_frame(r: &mut impl Read) -> Result<(u16, Vec<u8>), WireError> {
    let mut header = [0u8; 12];
    let mut filled = 0usize;
    while filled < header.len() {
        let n = r.read(&mut header[filled..])?;
        if n == 0 {
            return if filled == 0 {
                Err(WireError::Closed)
            } else {
                Err(WireError::Truncated {
                    context: "frame header",
                })
            };
        }
        filled += n;
    }
    let magic: [u8; 4] = [header[0], header[1], header[2], header[3]];
    if magic != MAGIC {
        return Err(WireError::BadMagic { found: magic });
    }
    let version = u16::from_le_bytes([header[4], header[5]]);
    if version != PROTOCOL_VERSION {
        return Err(WireError::UnsupportedVersion { found: version });
    }
    let kind = u16::from_le_bytes([header[6], header[7]]);
    let len = u32::from_le_bytes([header[8], header[9], header[10], header[11]]);
    if len > MAX_FRAME_PAYLOAD {
        return Err(WireError::FrameTooLarge {
            len: u64::from(len),
        });
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Truncated {
                context: "frame payload",
            }
        } else {
            WireError::Io(e)
        }
    })?;
    Ok((kind, payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip_bit_exactly() {
        let mut enc = Encoder::new();
        true.encode(&mut enc);
        0xDEAD_BEEFu32.encode(&mut enc);
        u64::MAX.encode(&mut enc);
        (-0.0f64).encode(&mut enc);
        f64::NAN.encode(&mut enc);
        "héllo".to_string().encode(&mut enc);
        Some(7u64).encode(&mut enc);
        Option::<u64>::None.encode(&mut enc);
        vec![1u32, 2, 3].encode(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert!(bool::decode(&mut dec).unwrap());
        assert_eq!(u32::decode(&mut dec).unwrap(), 0xDEAD_BEEF);
        assert_eq!(u64::decode(&mut dec).unwrap(), u64::MAX);
        assert_eq!(
            f64::decode(&mut dec).unwrap().to_bits(),
            (-0.0f64).to_bits()
        );
        assert!(f64::decode(&mut dec).unwrap().is_nan());
        assert_eq!(String::decode(&mut dec).unwrap(), "héllo");
        assert_eq!(Option::<u64>::decode(&mut dec).unwrap(), Some(7));
        assert_eq!(Option::<u64>::decode(&mut dec).unwrap(), None);
        assert_eq!(Vec::<u32>::decode(&mut dec).unwrap(), vec![1, 2, 3]);
        dec.finish().unwrap();
    }

    #[test]
    fn truncation_and_malformed_bytes_are_typed_errors() {
        let mut dec = Decoder::new(&[]);
        assert!(matches!(
            u64::decode(&mut dec),
            Err(WireError::Truncated { .. })
        ));
        let mut dec = Decoder::new(&[2]);
        assert!(matches!(
            bool::decode(&mut dec),
            Err(WireError::Malformed { .. })
        ));
        // A vec length prefix far beyond the payload fails at the first
        // missing element, not with an allocation.
        let mut enc = Encoder::new();
        enc.put_u32(u32::MAX);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert!(matches!(
            Vec::<u64>::decode(&mut dec),
            Err(WireError::Truncated { .. })
        ));
        // Invalid UTF-8 is malformed, not a panic.
        let mut enc = Encoder::new();
        enc.put_u32(2);
        enc.put_bytes(&[0xFF, 0xFE]);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert!(matches!(
            String::decode(&mut dec),
            Err(WireError::Malformed { .. })
        ));
    }

    #[test]
    fn frames_round_trip_and_reject_corruption() {
        let payload = b"hello frame".to_vec();
        let mut buf = Vec::new();
        write_frame(&mut buf, 3, &payload).unwrap();
        let (kind, decoded) = read_frame(&mut buf.as_slice()).unwrap();
        assert_eq!((kind, decoded), (3, payload.clone()));

        // Clean EOF between frames.
        assert!(matches!(
            read_frame(&mut [].as_slice()),
            Err(WireError::Closed)
        ));

        // EOF inside the header.
        assert!(matches!(
            read_frame(&mut buf[..5].as_ref()),
            Err(WireError::Truncated { .. })
        ));

        // EOF inside the payload.
        assert!(matches!(
            read_frame(&mut buf[..buf.len() - 3].as_ref()),
            Err(WireError::Truncated { .. })
        ));

        // Bad magic.
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(matches!(
            read_frame(&mut bad.as_slice()),
            Err(WireError::BadMagic { .. })
        ));

        // Unsupported version.
        let mut bad = buf.clone();
        bad[4] = 99;
        assert!(matches!(
            read_frame(&mut bad.as_slice()),
            Err(WireError::UnsupportedVersion { found: 99 })
        ));

        // Oversized length prefix: rejected before allocation.
        let mut bad = buf.clone();
        bad[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_frame(&mut bad.as_slice()),
            Err(WireError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn oversized_writes_are_rejected() {
        struct NullWriter;
        impl Write for NullWriter {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        // A payload over the cap must be refused without being written.
        // (Constructed via a zero-filled vec; never actually sent.)
        let huge = vec![0u8; MAX_FRAME_PAYLOAD as usize + 1];
        assert!(matches!(
            write_frame(&mut NullWriter, 1, &huge),
            Err(WireError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn errors_display_something_useful() {
        for e in [
            WireError::Closed,
            WireError::Truncated { context: "header" },
            WireError::BadMagic { found: [0; 4] },
            WireError::UnsupportedVersion { found: 2 },
            WireError::UnknownKind { found: 42 },
            WireError::FrameTooLarge { len: 1 << 40 },
            WireError::Malformed { context: "bool" },
            WireError::TrailingBytes { extra: 3 },
            WireError::Protocol("x".into()),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
