//! Hypothesis test (Sec. 3.1 / Figs. 4–5): do camera-observable placements
//! determine the multipath components?
//!
//! Run with:
//! ```sh
//! cargo run --release --example hypothesis_test
//! ```

use vvd::testbed::EvalConfig;
use vvd_testbed::hypothesis::run_hypothesis_test;

fn main() {
    let config = EvalConfig::quick();
    let test = run_hypothesis_test(&config);
    let (control, displaced, repeat) = test.tap_amplitudes();

    println!("Channel tap amplitudes (Fig. 5a)\n");
    println!(
        "{:>4} {:>14} {:>14} {:>14}",
        "tap", "control", "displaced", "repeat(aligned)"
    );
    for (i, ((c, d), r)) in control.iter().zip(&displaced).zip(&repeat).enumerate() {
        println!("{:>4} {:>14.4e} {:>14.4e} {:>14.4e}", i + 1, c, d, r);
    }

    println!("\nPhase-aligned MSE against the control estimate (Fig. 5b):");
    println!(
        "  same placement, later time : {:.4e}",
        test.control_vs_repeat_mse
    );
    println!(
        "  displaced placement        : {:.4e}",
        test.control_vs_displaced_mse
    );

    if test.hypotheses_hold() {
        println!(
            "\nHypotheses confirmed: displacement changes the MPCs (hypothesis 1), while a \
             repeated placement reproduces them up to a mean phase shift (hypothesis 2).\n\
             Camera images therefore carry the information needed for channel estimation."
        );
    } else {
        println!("\nHypotheses NOT confirmed on this configuration — inspect the channel model parameters.");
    }
}
