//! Quickstart: train VVD on a small simulated campaign and compare it with
//! the classical estimation techniques on one test set.
//!
//! Run with:
//! ```sh
//! cargo run --release --example quickstart
//! ```

use vvd::estimation::Technique;
use vvd::testbed::{combinations_for, evaluate_combination, Campaign, EvalConfig};

fn main() {
    // A laptop-scale campaign: 3 measurement sets, 60 packets each.
    let mut config = EvalConfig::quick();
    config.n_sets = 3;
    config.packets_per_set = 60;
    config.n_combinations = 1;
    config.kalman_warmup_packets = 10;
    config.max_vvd_training_samples = 90;
    config.vvd.epochs = 8;

    println!("Generating the measurement campaign (packets, frames, channel realisations)...");
    let campaign = Campaign::generate(&config);
    println!(
        "  {} sets, {} packets, {} depth frames\n",
        campaign.sets.len(),
        campaign.total_packets(),
        campaign.sets.iter().map(|s| s.frames.len()).sum::<usize>()
    );

    let techniques = [
        Technique::StandardDecoding,
        Technique::GroundTruth,
        Technique::PreambleBasedGenie,
        Technique::Previous100ms,
        Technique::KalmanAr5,
        Technique::VvdCurrent,
        Technique::PreambleVvdCombined,
    ];

    println!(
        "Training VVD and evaluating {} techniques on the test set...",
        techniques.len()
    );
    let combination = &combinations_for(config.n_sets, 1)[0];
    let result = evaluate_combination(&campaign, combination, &techniques);

    println!(
        "\n{:<28} {:>8} {:>8} {:>12} {:>8}",
        "technique", "PER", "CER", "MSE", "packets"
    );
    for technique in techniques {
        if let Some(m) = result.metric(technique) {
            println!(
                "{:<28} {:>8.4} {:>8.4} {:>12} {:>8}",
                technique.label(),
                m.per,
                m.cer,
                m.mse.map_or("-".to_string(), |v| format!("{v:.3e}")),
                m.packets
            );
        }
    }

    for report in &result.vvd_reports {
        println!(
            "\n{}: best validation MSE {:.4e} at epoch {}",
            report.variant, report.best_val_loss, report.best_epoch
        );
    }
}
