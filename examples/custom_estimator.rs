//! Plugging a custom channel estimator into the evaluation pipeline.
//!
//! Implements an exponentially-weighted moving average (EWMA) over the
//! perfect estimates of past packets — a one-line smoother the paper never
//! evaluated — registers it under the spec head `ewma:<alpha>`, and runs it
//! through the exact same streaming harness as the paper's techniques,
//! standalone and inside a `fallback:` chain.  No harness edits required.
//!
//! Run with:
//! ```sh
//! cargo run --release --example custom_estimator
//! ```

use vvd::dsp::FirFilter;
use vvd::estimation::estimator::{ChannelEstimator, Estimate, EstimateRequest, PacketObservation};
use vvd::estimation::registry::SpecError;
use vvd::estimation::{EstimatorRegistry, Technique};
use vvd::testbed::{
    combinations_for, evaluate_estimators, Campaign, EvalConfig, EvalOptions, LabeledEstimator,
};

/// EWMA over the (phase-aligned) perfect estimates of past packets:
/// `s[k] = α · h[k] + (1 − α) · s[k−1]`, used blindly for packet `k + 1`.
struct Ewma {
    alpha: f64,
    state: Option<FirFilter>,
}

impl Ewma {
    fn new(alpha: f64) -> Self {
        Ewma { alpha, state: None }
    }
}

impl ChannelEstimator for Ewma {
    fn observe(&mut self, obs: &PacketObservation<'_>) {
        let next = match &self.state {
            // The paper's Eq.-8 alignment re-attaches the per-packet phase
            // at decode time, so the smoother tracks the aligned history.
            Some(prev) => FirFilter::new(
                prev.taps()
                    .scale(1.0 - self.alpha)
                    .add(&obs.aligned_cir.taps().scale(self.alpha)),
            ),
            None => obs.aligned_cir.clone(),
        };
        self.state = Some(next);
    }

    fn estimate(&mut self, _req: &EstimateRequest<'_>) -> Estimate {
        match &self.state {
            // Blind estimate from past packets only: ask for alignment.
            Some(state) => Estimate::aligned(state.clone()),
            None => Estimate::Skip,
        }
    }
}

fn main() {
    // Register the new estimator family; `ewma:<alpha>` now composes with
    // every built-in spec, including fallback chains.
    let mut registry = EstimatorRegistry::new();
    registry.register("ewma", |_, args| {
        let alpha: f64 = args
            .parse()
            .map_err(|_| SpecError::new(&format!("ewma:{args}"), "expected `ewma:<alpha>`"))?;
        if !(0.0..=1.0).contains(&alpha) {
            return Err(SpecError::new(
                &format!("ewma:{args}"),
                "alpha must be in [0, 1]",
            ));
        }
        Ok(Box::new(Ewma::new(alpha)))
    });

    let mut config = EvalConfig::quick();
    config.n_sets = 3;
    config.packets_per_set = 60;
    config.n_combinations = 1;
    config.kalman_warmup_packets = 10;

    println!("Generating the measurement campaign...");
    let campaign = Campaign::generate(&config);
    let combination = &combinations_for(config.n_sets, 1)[0];

    let specs = [
        "ground-truth",
        "previous:100ms",
        "ewma:0.3",
        "ewma:0.7",
        "fallback:preamble,ewma:0.5",
    ];
    println!("Evaluating {} estimators: {specs:?}\n", specs.len());
    let estimators = specs
        .iter()
        .map(|&spec| {
            let label = spec
                .parse::<Technique>()
                .map(|t| t.label().to_string())
                .unwrap_or_else(|_| spec.to_string());
            LabeledEstimator::new(label, registry.build(spec).expect("valid spec"))
        })
        .collect();
    let result = evaluate_estimators(&campaign, combination, estimators, &EvalOptions::default());

    println!(
        "{:<28} {:>8} {:>8} {:>12} {:>8}",
        "estimator", "PER", "CER", "MSE", "packets"
    );
    for (label, m) in &result.metrics {
        println!(
            "{:<28} {:>8.4} {:>8.4} {:>12} {:>8}",
            label,
            m.per,
            m.cer,
            m.mse.map_or("-".to_string(), |v| format!("{v:.3e}")),
            m.packets
        );
    }
}
