//! Serving one workload across **worker processes** — and proving it
//! changes nothing.
//!
//! Builds a 12-session mixed workload (two radio environments, six
//! estimator families, VVD heads included) and serves it three times
//! through the `vvd-net` coordinator: as 1, 2 and 4 worker processes,
//! all sharing one on-disk model cache.  Every process is this same
//! executable, re-exec'd in worker mode (`maybe_run_worker` at the top
//! of `main` diverts those invocations), talking the framed wire
//! protocol over stdin/stdout pipes.
//!
//! Things to notice in the output:
//!
//! * the three report digests are **bit-identical** — partitioning
//!   sessions over processes is invisible in every decoded result, the
//!   same invariant the in-process engine holds for shard counts;
//! * cluster-wide trainings stay at the single-process count: the
//!   coordinator staggers worker fits over the shared disk cache, so
//!   each distinct model trains exactly once no matter how many
//!   processes need it (later workers load it as disk hits);
//! * the per-worker tick counts agree — workers advance in lockstep
//!   barrier rounds.
//!
//! Run with:
//! ```sh
//! cargo run --release --example serve_cluster
//! ```

use vvd::net::{serve_cluster_detailed, ClusterOptions, WorkerBackend};
use vvd::serve::SessionSpec;
use vvd::testbed::EvalConfig;

fn main() {
    // Worker invocations re-enter here; they run the wire-protocol loop
    // inside this call and never return from it.
    vvd::net::maybe_run_worker();

    // A small campaign so three full cluster runs finish in minutes.
    let mut cfg = EvalConfig::smoke();
    cfg.n_sets = 3;
    cfg.packets_per_set = 24;
    cfg.kalman_warmup_packets = 4;
    cfg.max_vvd_training_samples = 50;

    let scenarios = ["paper", "rician:k=6,doppler=30"];
    let estimators = [
        "vvd:current",
        "fallback:preamble,vvd:current",
        "kalman:ar=5",
        "previous:100ms",
        "ground-truth",
        "preamble",
    ];
    // Blocks of two per scenario, so round-robin partitioning puts
    // same-scenario VVD sessions on *different* workers — the shared
    // disk cache is doing real cross-process work, not sitting idle.
    let specs: Vec<SessionSpec> = (0..12)
        .map(|i| {
            SessionSpec::new(scenarios[(i / 2) % 2], estimators[i % estimators.len()])
                .every((i % 3 + 1) as u64)
                .offset((i % 4) as u64)
        })
        .collect();

    let cache_dir =
        std::env::temp_dir().join(format!("vvd-serve-cluster-example-{}", std::process::id()));

    let mut digests = Vec::new();
    for workers in [1usize, 2, 4] {
        println!("serving 12 sessions across {workers} worker process(es) …");
        let run = serve_cluster_detailed(
            &cfg,
            &specs,
            &ClusterOptions {
                workers,
                shards: vvd::dsp::per_process_worker_budget(workers),
                granularity: 16,
                cache_dir: Some(cache_dir.clone()),
                backend: WorkerBackend::SelfExec,
                checkpoints: false,
                pipeline: vvd::dsp::pipeline_enabled(),
                fault: None,
            },
        )
        .expect("cluster serve succeeds");

        println!(
            "  {} packets ({} scored) in {} ticks, {:.2?} wall",
            run.report.packets_streamed,
            run.report.packets_served,
            run.report.ticks,
            run.report.wall,
        );
        for (w, stats) in run.per_worker.iter().enumerate() {
            println!(
                "  worker {w}: {} ticks, {} trainings, {} mem hits, {} disk hits",
                stats.ticks, stats.cache.misses, stats.cache.hits, stats.cache.disk_hits,
            );
        }
        println!("  digest: {:016x}\n", run.report.digest());
        digests.push(run.report.digest());
    }
    let _ = std::fs::remove_dir_all(&cache_dir);

    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "digests diverged across process counts: {digests:x?}"
    );
    println!("all three digests identical — worker processes are invisible in the results");
    println!("(the shared disk cache means later runs and later workers skip every training)");
}
