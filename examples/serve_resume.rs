//! Killing a worker process mid-stream — and proving it changes nothing.
//!
//! Builds a 10-session mixed workload and serves it twice through the
//! `vvd-net` coordinator with 2 worker processes (this same executable,
//! re-exec'd in worker mode):
//!
//! 1. **Uninterrupted**, checkpoints off — the baseline digest.
//! 2. **With a deterministic crash**: checkpoints on, and an
//!    [`InjectedFault`] SIGKILLs worker 0 at the tick-4 barrier.  Every
//!    barrier ack carries a checkpoint frame, so the coordinator holds a
//!    resume point exactly as fresh as the progress it has acked: it
//!    respawns the dead worker, hands it the original assignment plus the
//!    last checkpoint frame, and the replacement rebuilds its workload
//!    slice (deterministic retraining — or a cache hit — included),
//!    restores the streaming state and rejoins the barrier dance.
//!
//! The two report digests are **bit-identical**: crash recovery, like
//! sharding and process partitioning before it, is invisible in every
//! decoded result.
//!
//! Run with:
//! ```sh
//! cargo run --release --example serve_resume
//! ```

use vvd::net::{serve_cluster, ClusterOptions, InjectedFault, WorkerBackend};
use vvd::serve::SessionSpec;
use vvd::testbed::EvalConfig;

fn main() {
    // Worker invocations (including respawned replacements) re-enter
    // here; they run the wire-protocol loop and never return.
    vvd::net::maybe_run_worker();

    let mut cfg = EvalConfig::smoke();
    cfg.n_sets = 3;
    cfg.packets_per_set = 24;
    cfg.kalman_warmup_packets = 4;
    cfg.max_vvd_training_samples = 50;

    let scenarios = ["paper", "rician:k=6,doppler=30"];
    let estimators = [
        "vvd:current",
        "fallback:preamble,vvd:current",
        "kalman:ar=5",
        "previous:100ms",
        "ground-truth",
    ];
    let specs: Vec<SessionSpec> = (0..10)
        .map(|i| {
            SessionSpec::new(scenarios[(i / 2) % 2], estimators[i % estimators.len()])
                .every((i % 3 + 1) as u64)
                .offset((i % 4) as u64)
        })
        .collect();

    let options = |fault| ClusterOptions {
        workers: 2,
        shards: vvd::dsp::per_process_worker_budget(2),
        granularity: 2,
        cache_dir: None,
        backend: WorkerBackend::SelfExec,
        checkpoints: fault,
        pipeline: vvd::dsp::pipeline_enabled(),
        fault: fault.then_some(InjectedFault {
            worker: 0,
            at_tick: 4,
        }),
    };

    println!("serving 10 sessions across 2 worker processes, uninterrupted …");
    let baseline = serve_cluster(&cfg, &specs, &options(false)).expect("cluster serve succeeds");
    println!(
        "  {} packets ({} scored), digest {:016x}\n",
        baseline.packets_streamed,
        baseline.packets_served,
        baseline.digest()
    );

    println!("same workload, but worker 0 is SIGKILLed at the tick-4 barrier …");
    let recovered =
        serve_cluster(&cfg, &specs, &options(true)).expect("crash recovery reproduces the run");
    println!(
        "  {} packets ({} scored), digest {:016x}\n",
        recovered.packets_streamed,
        recovered.packets_served,
        recovered.digest()
    );

    assert_eq!(
        baseline.digest(),
        recovered.digest(),
        "recovery must be invisible in the decoded results"
    );
    println!("digests identical — the killed worker resumed from its checkpoint");
    println!("(state restored, fit products re-derived deterministically, replay to the barrier)");
}
