//! Factory-monitoring scenario: sporadic safety-critical sensor traffic.
//!
//! The paper motivates VVD with industrial deployments in which
//! battery-powered sensors transmit *sporadically*, so time-series
//! estimators starve for pilot updates while a surveillance camera keeps
//! observing the environment.  This example emulates that situation: the
//! sensor only transmits every Nth packet slot, so the freshest "previous"
//! estimate is N × 100 ms old, while VVD always has a current depth frame.
//!
//! Run with:
//! ```sh
//! cargo run --release --example factory_monitoring
//! ```

use vvd::dsp::FirFilter;
use vvd::estimation::decode::decode_with_estimate;
use vvd::estimation::ls::preamble_estimate;
use vvd::estimation::metrics::packet_error_rate;
use vvd::estimation::EqualizerConfig;
use vvd::phy::Receiver;
use vvd::testbed::{combinations_for, Campaign, EvalConfig};
use vvd_core::{VvdModel, VvdVariant};
use vvd_testbed::evaluate::build_vvd_dataset;

fn main() {
    let mut config = EvalConfig::quick();
    config.n_sets = 3;
    config.packets_per_set = 80;
    config.kalman_warmup_packets = 0;
    config.max_vvd_training_samples = 120;
    config.vvd.epochs = 8;

    println!("Generating campaign and training VVD-Current...");
    let campaign = Campaign::generate(&config);
    let combination = &combinations_for(config.n_sets, 1)[0];
    let train = build_vvd_dataset(&campaign, &combination.training, VvdVariant::Current, 120);
    let validation = build_vvd_dataset(
        &campaign,
        &[combination.validation],
        VvdVariant::Current,
        30,
    );
    let (vvd, _) = VvdModel::train(VvdVariant::Current, &config.vvd, &train, &validation);

    let receiver = Receiver::new(config.phy);
    let eq = config.equalizer;
    let eq_no_phase = EqualizerConfig {
        align_phase: false,
        ..eq
    };
    let test_set = campaign.set(combination.test);

    // Sporadic duty cycles: the sensor transmits every `gap` slots, so the
    // newest prior packet available to "previous estimate" decoding is
    // `gap * 100 ms` old.
    println!("\nsporadic traffic: PER of stale-pilot decoding vs VVD (camera always fresh)\n");
    println!(
        "{:>12} {:>18} {:>12}",
        "gap [ms]", "previous-estimate", "VVD-Current"
    );
    for gap in [1usize, 5, 10, 20, 40] {
        let mut stale_outcomes = Vec::new();
        let mut vvd_outcomes = Vec::new();
        for (k, record) in test_set.packets.iter().enumerate() {
            if k < gap || k % gap != 0 {
                continue;
            }
            let (tx, received) = campaign.received_waveform(combination.test, record.index);

            // Previous-estimate decoding: the newest available pilot is gap packets old.
            let stale: FirFilter = test_set.packets[k - gap].perfect_cir.clone();
            stale_outcomes.push(decode_with_estimate(
                &receiver,
                &tx,
                received.as_slice(),
                &stale,
                &eq,
            ));

            // VVD decoding from the frame synchronised with this packet.
            let frame = &test_set.frames[record.frame_index];
            let estimate = vvd.predict_cir(&frame.image);
            vvd_outcomes.push(decode_with_estimate(
                &receiver,
                &tx,
                received.as_slice(),
                &estimate,
                &eq,
            ));
        }
        println!(
            "{:>12} {:>18.4} {:>12.4}",
            gap * 100,
            packet_error_rate(&stale_outcomes),
            packet_error_rate(&vvd_outcomes)
        );
    }

    // Reference point: pilot-aided decoding when the preamble is detected.
    let mut preamble_outcomes = Vec::new();
    for record in &test_set.packets {
        let (tx, received) = campaign.received_waveform(combination.test, record.index);
        if record.preamble_detected {
            if let Ok(est) = preamble_estimate(&tx, received.as_slice(), eq.channel_taps) {
                preamble_outcomes.push(decode_with_estimate(
                    &receiver,
                    &tx,
                    received.as_slice(),
                    &est,
                    &eq_no_phase,
                ));
            }
        }
    }
    println!(
        "\npilot-aided reference (detected preambles only): PER {:.4} over {} packets",
        packet_error_rate(&preamble_outcomes),
        preamble_outcomes.len()
    );
}
