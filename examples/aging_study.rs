//! Aging study: how quickly does a channel estimate become useless?
//!
//! Reproduces the spirit of Figs. 16–17 on a small simulated campaign:
//! the estimate used to decode each packet is made older and older, and the
//! MSE against the current perfect estimate plus the packet error rate are
//! reported for the Preamble-Genie estimate and for VVD.
//!
//! Run with:
//! ```sh
//! cargo run --release --example aging_study
//! ```

use vvd::estimation::Technique;
use vvd::testbed::{combinations_for, Campaign, EvalConfig};
use vvd_testbed::aging::aging_sweep;

fn main() {
    let mut config = EvalConfig::quick();
    config.n_sets = 3;
    config.packets_per_set = 100;
    config.kalman_warmup_packets = 0;
    config.max_vvd_training_samples = 120;
    config.vvd.epochs = 8;

    println!("Generating campaign and training VVD-Current...");
    let campaign = Campaign::generate(&config);
    let combination = &combinations_for(config.n_sets, 1)[0];

    let ages = [0.0, 0.1, 0.5, 1.0, 2.0, 5.0];
    let curves = aging_sweep(
        &campaign,
        combination,
        &ages,
        &[Technique::PreambleBasedGenie, Technique::VvdCurrent],
    );

    for curve in &curves {
        println!("\n{} (estimate age sweep)", curve.technique);
        println!("{:>10} {:>14} {:>10}", "age [s]", "MSE", "PER");
        for ((age, mse), per) in curve.ages_s.iter().zip(&curve.mse).zip(&curve.per) {
            println!("{:>10.1} {:>14.4e} {:>10.4}", age, mse, per);
        }
    }

    println!(
        "\nExpected shape (Figs. 16-17): the Preamble-Genie MSE grows steeply with age \
         and saturates after ~2 s, while the VVD curve starts higher but ages far more \
         gracefully because the camera keeps observing the environment."
    );
}
