//! Plugging a custom channel scenario into the evaluation pipeline.
//!
//! Implements an "orbit" scenario — a single worker circling the room's
//! centre at fixed radius and period, the kind of repetitive machinery
//! motion the paper's factory-monitoring pitch cares about — registers it
//! under the spec head `orbit:radius=<m>,period=<s>`, and runs it through
//! the exact same campaign generator and streaming harness as the built-in
//! scenarios, composed with a built-in noise overlay.  No harness edits
//! required.
//!
//! Run with:
//! ```sh
//! cargo run --release --example custom_scenario
//! ```

use rand::RngCore;
use vvd::channel::scenario::{
    crystal_phase, BlockerSnapshot, ChannelScenario, PacketChannel, ScenarioRegistry,
    SpecParseError,
};
use vvd::channel::{CirConfig, CirSynthesizer, Human, Room};
use vvd::dsp::FirFilter;
use vvd::testbed::{combinations_for, evaluate_specs, Campaign, EvalConfig, EvalOptions};

/// One worker circling the centre of the movement area: position is a
/// deterministic function of time, so a camera-based estimator can learn
/// the motion perfectly — only the diffuse residual and the crystal phase
/// stay random.
struct Orbit {
    synth: CirSynthesizer,
    radius: f64,
    period_s: f64,
}

impl Orbit {
    fn new(radius: f64, period_s: f64, cir: CirConfig) -> Self {
        Orbit {
            synth: CirSynthesizer::new(Room::laboratory(), cir),
            radius,
            period_s,
        }
    }

    fn position_at(&self, time_s: f64) -> (f64, f64) {
        let (cx, cy) = self.synth.room().movement_area_center();
        let angle = 2.0 * std::f64::consts::PI * time_s / self.period_s;
        self.synth.room().clamp_to_movement_area(
            cx + self.radius * angle.cos(),
            cy + self.radius * angle.sin(),
        )
    }
}

impl ChannelScenario for Orbit {
    fn spec(&self) -> String {
        format!("orbit:radius={},period={}", self.radius, self.period_s)
    }

    fn room(&self) -> &Room {
        self.synth.room()
    }

    fn nominal_cir(&self) -> FirFilter {
        self.synth.nominal_cir()
    }

    fn begin_set(&mut self, dt: f64, steps: usize, _rng: &mut dyn RngCore) -> Vec<BlockerSnapshot> {
        (0..steps)
            .map(|i| vec![self.position_at(i as f64 * dt)])
            .collect()
    }

    fn packet_channel(
        &mut self,
        _time_s: f64,
        blockers: &[(f64, f64)],
        rng: &mut dyn RngCore,
    ) -> PacketChannel {
        let (x, y) = blockers[0];
        PacketChannel {
            fir: self.synth.cir(&Human::at(x, y), rng),
            phase_offset: crystal_phase(rng),
            noise_scale: 1.0,
        }
    }
}

fn main() {
    // Register the new scenario family; `orbit:…` now composes with every
    // built-in overlay, exactly like `paper` or `rician:…`.
    let mut registry = ScenarioRegistry::new();
    registry.register("orbit", |registry, args| {
        let spec = format!("orbit:{args}");
        let mut radius = 1.0;
        let mut period = 8.0;
        for token in args.split(',').filter(|t| !t.is_empty()) {
            match token.split_once('=') {
                Some(("radius", v)) => {
                    radius = v
                        .parse()
                        .map_err(|_| SpecParseError::new(&spec, "bad radius"))?
                }
                Some(("period", v)) => {
                    period = v
                        .parse()
                        .map_err(|_| SpecParseError::new(&spec, "bad period"))?
                }
                _ => {
                    return Err(SpecParseError::new(
                        &spec,
                        "expected `orbit:radius=<m>,period=<s>`",
                    ))
                }
            }
        }
        if !(radius > 0.0 && period > 0.0) {
            return Err(SpecParseError::new(&spec, "radius and period must be > 0"));
        }
        Ok(Box::new(Orbit::new(radius, period, *registry.cir_config())))
    });

    let mut config = EvalConfig::quick();
    config.n_sets = 3;
    config.packets_per_set = 60;
    config.n_combinations = 1;
    config.kalman_warmup_packets = 10;

    // Build through the registry — overlays compose onto the custom head —
    // and generate a campaign from it.
    let spec = "orbit:radius=1.2,period=6+snr-offset:db=3";
    let mut scenario = registry.build(spec).expect("valid spec");
    println!("Generating the `{spec}` campaign...");
    let campaign = Campaign::generate_scenario(&config, scenario.as_mut());
    let combination = &combinations_for(config.n_sets, 1)[0];

    let estimators = [
        "ground-truth",
        "preamble",
        "kalman:ar=20",
        "vvd:current",
        "fallback:preamble,vvd:current",
    ];
    println!(
        "Evaluating {} estimators: {estimators:?}\n",
        estimators.len()
    );
    let result = evaluate_specs(&campaign, combination, &estimators, &EvalOptions::default())
        .expect("valid estimator specs");

    println!(
        "{:<28} {:>8} {:>8} {:>12} {:>8}",
        "estimator", "PER", "CER", "MSE", "packets"
    );
    for (label, m) in &result.metrics {
        println!(
            "{:<28} {:>8.4} {:>8.4} {:>12} {:>8}",
            label,
            m.per,
            m.cer,
            m.mse.map_or("-".to_string(), |v| format!("{v:.3e}")),
            m.packets
        );
    }
}
