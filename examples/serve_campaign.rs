//! Serving many concurrent links with cross-session batched inference.
//!
//! Builds a 12-session workload — two radio environments, six estimator
//! families, heterogeneous packet arrival rates — through the `vvd-serve`
//! load generator, runs it on the sharded serving engine, and prints the
//! report: per-session PER/CER/MSE, throughput, the batch occupancy of the
//! coalesced VVD forward passes, and the shared model cache's counters.
//!
//! Things to notice in the output:
//!
//! * the model cache trains **once per (scenario, variant)** — every other
//!   VVD-backed session is a cache hit holding an `Arc`-clone of the same
//!   network;
//! * the planner issues **fewer NN forward calls than packets served**
//!   (batch occupancy > 1): same-model predictions from different sessions
//!   ride one `predict_batch` call per tick;
//! * rerunning with a different shard count (or `VVD_WORKERS=1`) changes
//!   the wall-clock, never the digest — serving is bit-identical to the
//!   offline streaming pipeline by construction.
//!
//! Run with:
//! ```sh
//! cargo run --release --example serve_campaign
//! ```

use vvd::serve::{serve, LoadGenerator, ServeOptions, SessionSpec};
use vvd::testbed::EvalConfig;

fn main() {
    // A laptop-scale campaign so the example finishes in about a minute;
    // scale `packets_per_set` / `n_sets` up for a heavier load run.
    let mut cfg = EvalConfig::smoke();
    cfg.n_sets = 3;
    cfg.packets_per_set = 40;
    cfg.kalman_warmup_packets = 5;
    // Enough training budget that the VVD rows are meaningful (the smoke
    // preset's 4 epochs are tuned for unit-test speed, not quality).
    cfg.vvd.epochs = 16;
    cfg.max_vvd_training_samples = 70;

    // Twelve links: two environments × six estimator families, with
    // arrival intervals of 1–3 ticks and staggered starts.  Sessions
    // sharing a scenario share one campaign; sessions sharing a VVD head
    // share one trained network.
    let scenarios = ["paper", "rician:k=6,doppler=30"];
    let estimators = [
        "vvd:current",
        "fallback:preamble,vvd:current",
        "kalman:ar=5",
        "previous:100ms",
        "ground-truth",
        "standard",
    ];
    let specs: Vec<SessionSpec> = (0..12)
        .map(|i| {
            SessionSpec::new(scenarios[i % 2], estimators[i % estimators.len()])
                .every((i % 3 + 1) as u64)
                .offset((i % 4) as u64)
        })
        .collect();

    println!("building the workload (campaign generation + shared trainings) …");
    let workload = LoadGenerator::new(cfg)
        .build(&specs)
        .expect("example specs are valid");

    let options = ServeOptions::default();
    println!("serving on {} shard(s) …\n", options.shards);
    let report = serve(workload, &options);

    print!("{report}");
    println!("\noutcome digest: {:016x}", report.digest());
    println!("(rerun with VVD_WORKERS=1 or any other shard count: the digest is invariant)");
}
