//! # vvd — Veni Vidi Dixi reproduction façade
//!
//! This crate re-exports the public API of every subsystem of the
//! reproduction so that examples, integration tests and downstream users can
//! depend on a single crate:
//!
//! * [`dsp`] — complex arithmetic, linear algebra and DSP primitives,
//! * [`phy`] — the IEEE 802.15.4 O-QPSK DSSS physical layer,
//! * [`channel`] — the geometric indoor multipath channel simulator, the
//!   blocker mobility models, and the pluggable scenario engine (the
//!   `ChannelScenario` trait plus the `ScenarioRegistry` building
//!   scenarios from spec strings like `"room:large,humans=4,speed=1.5"`,
//!   `"rician:k=6,doppler=30"` or `"paper+burst-noise:p=0.01"`),
//! * [`vision`] — the depth-camera simulator and image preprocessing,
//! * [`nn`] — the from-scratch CNN library,
//! * [`estimation`] — channel estimation, equalization and metrics, plus
//!   the first-class `ChannelEstimator` trait and the pluggable
//!   `EstimatorRegistry` (spec strings like `"kalman:ar=7"` or
//!   `"fallback:preamble,vvd:current"`),
//! * [`core`] — the VVD algorithm (depth image → CIR CNN),
//! * [`testbed`] — the measurement-campaign simulator and the evaluation
//!   harness reproducing the paper's figures and tables,
//! * [`serve`] — the sharded multi-link serving engine that multiplexes
//!   many concurrent streaming estimators over shared compute, coalescing
//!   same-model VVD predictions across sessions into batched NN forward
//!   passes,
//! * [`net`] — cross-process serving: a coordinator partitioning a serve
//!   workload over worker processes (framed wire protocol, tick barriers,
//!   shared on-disk model cache) whose merged report is bit-identical to
//!   the single-process run.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the system
//! inventory and the per-experiment index.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub use vvd_channel as channel;
pub use vvd_core as core;
pub use vvd_dsp as dsp;
pub use vvd_estimation as estimation;
pub use vvd_net as net;
pub use vvd_nn as nn;
pub use vvd_phy as phy;
pub use vvd_serve as serve;
pub use vvd_testbed as testbed;
pub use vvd_vision as vision;
