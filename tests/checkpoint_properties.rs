//! Checkpoint property suite:
//!
//! * **Idempotent frames** — for every built-in estimator technique
//!   (nested fallback chains included), checkpointing, resuming a fresh
//!   engine from the frame and checkpointing again yields **byte-identical**
//!   frames: `save → load → save` loses nothing and invents nothing.
//! * **Resume ≡ uninterrupted** — over randomized session mixes,
//!   checkpoint ticks and shard counts (1–8 on both sides of the cut),
//!   the resumed run's digest equals the uninterrupted run's.

use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};
use vvd::serve::{
    serve, EngineCheckpoint, LoadGenerator, ServeEngine, ServeOptions, SessionSpec, Workload,
};
use vvd::testbed::{Campaign, EvalConfig};

fn tiny_config() -> EvalConfig {
    let mut cfg = EvalConfig::smoke();
    cfg.n_sets = 3;
    cfg.packets_per_set = 10;
    cfg.kalman_warmup_packets = 2;
    cfg.max_vvd_training_samples = 24;
    cfg
}

const SCENARIOS: [&str; 2] = ["paper", "rayleigh:doppler=10"];

/// Campaigns are deterministic, so generating them once per process and
/// sharing across proptest cases is a pure speedup.
fn campaigns() -> &'static BTreeMap<String, Arc<Campaign>> {
    static CAMPAIGNS: OnceLock<BTreeMap<String, Arc<Campaign>>> = OnceLock::new();
    CAMPAIGNS.get_or_init(|| {
        let cfg = tiny_config();
        SCENARIOS
            .into_iter()
            .map(|s| {
                (
                    s.to_string(),
                    Arc::new(Campaign::generate_spec(&cfg, s).expect("scenario is valid")),
                )
            })
            .collect()
    })
}

fn build_workload(specs: &[SessionSpec]) -> Workload {
    let mut generator = LoadGenerator::new(tiny_config());
    for (spec, campaign) in campaigns() {
        generator = generator.with_campaign(spec.clone(), Arc::clone(campaign));
    }
    generator.build(specs).expect("specs are valid")
}

/// Every built-in technique, plus a right-nested fallback chain — the
/// deepest state shape the registry can produce.
const ALL_TECHNIQUES: [&str; 15] = [
    "standard",
    "ground-truth",
    "preamble",
    "preamble:genie",
    "previous:100ms",
    "previous:500ms",
    "kalman:ar=1",
    "kalman:ar=5",
    "kalman:ar=20",
    "vvd:current",
    "vvd:future33ms",
    "vvd:future100ms",
    "fallback:preamble,vvd:current",
    "fallback:preamble,kalman:ar=20",
    "fallback:preamble,fallback:kalman:ar=5,vvd:current",
];

#[test]
fn every_technique_round_trips_to_a_byte_identical_frame() {
    // One session per technique, staggered so mid-run state differs
    // between sessions (some mid-history, some untouched).
    let specs: Vec<SessionSpec> = ALL_TECHNIQUES
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            SessionSpec::new(SCENARIOS[i % 2], *spec)
                .every((i % 3 + 1) as u64)
                .offset((i % 4) as u64)
        })
        .collect();

    // Checkpoint at several depths: untouched, mid-stream, drained.
    for at_tick in [0u64, 5, u64::MAX] {
        let mut engine = ServeEngine::new(
            build_workload(&specs),
            &ServeOptions {
                shards: 2,
                ..ServeOptions::default()
            },
        );
        engine.run_ticks(at_tick);
        let first = engine
            .checkpoint()
            .expect("tick boundaries always checkpoint")
            .to_frame();

        let resumed = ServeEngine::resume(
            build_workload(&specs),
            &ServeOptions {
                shards: 4,
                ..ServeOptions::default()
            },
            &EngineCheckpoint::from_frame(&first).expect("own frame decodes"),
        )
        .expect("own checkpoint resumes");
        let second = resumed
            .checkpoint()
            .expect("a just-resumed engine is at a tick boundary")
            .to_frame();
        assert_eq!(
            first, second,
            "save → load → save must be byte-identical (checkpoint tick {at_tick})"
        );
    }
}

/// Cheap stateful estimators only — the proptest sweep exercises the
/// cut-point/shard space, not model training.
const CHEAP_TECHNIQUES: [&str; 6] = [
    "ground-truth",
    "standard",
    "preamble",
    "previous:100ms",
    "kalman:ar=2",
    "fallback:preamble,kalman:ar=2",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A run cut at a random tick and resumed under a random shard count
    /// digests identically to the uninterrupted run.
    #[test]
    fn randomized_resume_matches_uninterrupted(
        sessions in proptest::collection::vec((0usize..2, 0usize..6, 1u64..4, 0u64..3), 1..6),
        cut_fraction in 0.0f64..=1.0,
        shards_before in 1usize..=8,
        shards_after in 1usize..=8,
    ) {
        let specs: Vec<SessionSpec> = sessions
            .iter()
            .map(|&(scenario, estimator, every, offset)| {
                SessionSpec::new(SCENARIOS[scenario], CHEAP_TECHNIQUES[estimator])
                    .every(every)
                    .offset(offset)
            })
            .collect();

        let reference = serve(build_workload(&specs), &ServeOptions { shards: 1, ..ServeOptions::default() });
        let cut = ((reference.ticks as f64) * cut_fraction).floor() as u64;

        let mut engine = ServeEngine::new(
            build_workload(&specs),
            &ServeOptions { shards: shards_before, ..ServeOptions::default() },
        );
        engine.run_ticks(cut);
        let frame = engine
            .checkpoint()
            .expect("tick boundaries always checkpoint")
            .to_frame();
        drop(engine);

        let mut resumed = ServeEngine::resume(
            build_workload(&specs),
            &ServeOptions { shards: shards_after, ..ServeOptions::default() },
            &EngineCheckpoint::from_frame(&frame).expect("own frame decodes"),
        )
        .expect("own checkpoint resumes");
        while !resumed.finished() {
            resumed.run_ticks(5);
        }
        let report = resumed.finish();
        prop_assert!(
            report.digest() == reference.digest(),
            "cut at {}/{} with shards {}→{} diverged",
            cut,
            reference.ticks,
            shards_before,
            shards_after
        );
        prop_assert_eq!(report.packets_streamed, reference.packets_streamed);
    }
}
