//! Property-based concurrency suite for the serving engine: whatever the
//! session mix, arrival schedule or shard count, a workload's outcomes —
//! captured by [`ServeReport::digest`] — never change.  This is the
//! serve-layer analogue of the kernel bit-exactness proptests: scheduling
//! may move *when* work happens, never *what* is computed.

use proptest::prelude::*;
use std::sync::{Arc, OnceLock};
use vvd::net::{serve_cluster, ClusterOptions, WorkerBackend};
use vvd::serve::{serve, LoadGenerator, ServeOptions, SessionSpec};
use vvd::testbed::{Campaign, EvalConfig};

/// Cheap estimator heads (no CNN training) so the suite explores many
/// workloads per second; the VVD path's bit-identity is pinned separately
/// by the golden test.
const HEADS: &[&str] = &[
    "ground-truth",
    "standard",
    "preamble",
    "preamble:genie",
    "previous:100ms",
    "previous:300ms",
    "kalman:ar=1",
    "fallback:preamble,previous:100ms",
];

fn property_config() -> EvalConfig {
    let mut cfg = EvalConfig::smoke();
    cfg.n_sets = 3;
    cfg.packets_per_set = 10;
    cfg.kalman_warmup_packets = 2;
    cfg
}

/// One campaign, generated once and shared by every proptest case (the
/// engine never mutates it).
fn shared_campaign() -> Arc<Campaign> {
    static CAMPAIGN: OnceLock<Arc<Campaign>> = OnceLock::new();
    Arc::clone(
        CAMPAIGN.get_or_init(|| {
            Arc::new(Campaign::generate_spec(&property_config(), "paper").unwrap())
        }),
    )
}

/// A randomised arrival schedule for `n` sessions.
fn schedule_strategy(n: usize) -> impl Strategy<Value = Vec<(u64, u64)>> {
    proptest::collection::vec((1u64..4, 0u64..6), n)
}

fn build_specs(heads: &[usize], schedule: &[(u64, u64)]) -> Vec<SessionSpec> {
    heads
        .iter()
        .zip(schedule)
        .map(|(&head, &(interval, offset))| {
            SessionSpec::new("paper", HEADS[head % HEADS.len()])
                .every(interval)
                .offset(offset)
        })
        .collect()
}

fn run_digest(heads: &[usize], schedule: &[(u64, u64)], shards: usize) -> (u64, u64) {
    let cfg = property_config();
    let workload = LoadGenerator::new(cfg)
        .with_campaign("paper", shared_campaign())
        .build(&build_specs(heads, schedule))
        .unwrap();
    let report = serve(
        workload,
        &ServeOptions {
            shards,
            ..ServeOptions::default()
        },
    );
    (report.digest(), report.packets_streamed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Randomised session mixes, arrival orders and shard counts always
    /// produce identical report digests.
    #[test]
    fn digest_is_invariant_to_schedule_and_shard_count(
        heads in proptest::collection::vec(0usize..HEADS.len(), 1..10),
        schedule_a in schedule_strategy(10),
        schedule_b in schedule_strategy(10),
        shards_a in 1usize..=8,
        shards_b in 1usize..=8,
    ) {
        let n = heads.len();
        let (digest_a, streamed_a) = run_digest(&heads, &schedule_a[..n], shards_a);
        let (digest_b, streamed_b) = run_digest(&heads, &schedule_b[..n], shards_b);
        // Same sessions: same packets streamed, bit-identical outcomes —
        // whatever the timing and sharding.
        prop_assert_eq!(streamed_a, streamed_b);
        prop_assert!(
            digest_a == digest_b,
            "schedules {:?}/{:?} shards {}/{} diverged",
            &schedule_a[..n], &schedule_b[..n], shards_a, shards_b
        );
    }

    /// The digest is not degenerate: workloads with different estimator
    /// mixes digest differently (different labels and outcomes).
    #[test]
    fn digest_distinguishes_different_workloads(
        head_a in 0usize..HEADS.len(),
        head_b in 0usize..HEADS.len(),
    ) {
        prop_assume!(head_a != head_b);
        let schedule = [(1u64, 0u64)];
        let (digest_a, _) = run_digest(&[head_a], &schedule, 1);
        let (digest_b, _) = run_digest(&[head_b], &schedule, 1);
        prop_assert_ne!(digest_a, digest_b);
    }
}

proptest! {
    // Each case runs a full cluster (workers rebuild their campaign
    // slice), so a handful of cases keeps the suite fast.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The process axis extends the invariance: partitioning a random
    /// workload over 1–5 loopback worker processes at any barrier
    /// granularity reproduces the single-process digest bit-exactly.
    #[test]
    fn digest_is_invariant_to_worker_process_count(
        heads in proptest::collection::vec(0usize..HEADS.len(), 1..6),
        schedule in schedule_strategy(6),
        workers in 1usize..=5,
        granularity in 1u64..16,
    ) {
        let n = heads.len();
        let (reference, streamed) = run_digest(&heads, &schedule[..n], 1);
        let report = serve_cluster(
            &property_config(),
            &build_specs(&heads, &schedule[..n]),
            &ClusterOptions {
                workers,
                shards: 2,
                granularity,
                cache_dir: None,
                backend: WorkerBackend::Loopback,
                checkpoints: false,
                pipeline: vvd::dsp::pipeline_enabled(),
                fault: None,
            },
        )
        .unwrap();
        prop_assert_eq!(report.packets_streamed, streamed);
        prop_assert!(
            report.digest() == reference,
            "digest diverged at {} workers, granularity {}", workers, granularity
        );
    }
}
