//! New scenarios end-to-end: every scenario family added by the scenario
//! engine must run through `run_evaluation` with all 14 paper techniques —
//! VVD training included — and produce sane metrics.

use vvd::estimation::Technique;
use vvd::testbed::evaluate::run_evaluation;
use vvd::testbed::{Campaign, EvalConfig};

/// A campaign small enough that 14 techniques × 3 scenarios stay test-fast
/// while still exercising training, warm-up, streaming and aggregation.
fn e2e_config() -> EvalConfig {
    let mut cfg = EvalConfig::smoke();
    cfg.n_sets = 3;
    cfg.packets_per_set = 24;
    cfg.n_combinations = 1;
    cfg.kalman_warmup_packets = 4;
    cfg.max_vvd_training_samples = 40;
    cfg.vvd.epochs = 2;
    cfg
}

fn run_all_techniques(spec: &str) {
    let cfg = e2e_config();
    let campaign = Campaign::generate_spec(&cfg, spec)
        .unwrap_or_else(|e| panic!("`{spec}` should build: {e}"));
    assert_eq!(campaign.scenario, spec);

    let (results, summary) = run_evaluation(&campaign, &Technique::ALL);
    assert_eq!(results.len(), cfg.n_combinations);
    for result in &results {
        assert_eq!(
            result.metrics.len(),
            Technique::ALL.len(),
            "{spec}: every technique must report metrics"
        );
        for technique in Technique::ALL {
            let m = result
                .metric(technique)
                .unwrap_or_else(|| panic!("{spec}: no metrics for {technique}"));
            assert!(
                (0.0..=1.0).contains(&m.per),
                "{spec}/{technique}: PER {} out of range",
                m.per
            );
            assert!(
                (0.0..=1.0).contains(&m.cer),
                "{spec}/{technique}: CER {} out of range",
                m.cer
            );
            assert!(m.packets > 0, "{spec}/{technique}: no packets scored");
            if let Some(mse) = m.mse {
                assert!(
                    mse.is_finite() && mse >= 0.0,
                    "{spec}/{technique}: bad MSE {mse}"
                );
            }
        }
        // The three VVD variants trained (once each, via the pool).
        assert_eq!(result.vvd_reports.len(), 3, "{spec}: VVD training reports");
    }
    // Aggregation covers every technique label.
    assert_eq!(summary.per.len(), Technique::ALL.len());
}

#[test]
fn crowd_scenario_runs_all_14_techniques_end_to_end() {
    run_all_techniques("room:large,humans=4,speed=1.5");
}

#[test]
fn rician_scenario_runs_all_14_techniques_end_to_end() {
    run_all_techniques("rician:k=6,doppler=30");
}

#[test]
fn snr_sweep_scenario_runs_all_14_techniques_end_to_end() {
    run_all_techniques("paper+snr-sweep:from=-10,to=0");
}

#[test]
fn rayleigh_overlay_composition_runs_all_14_techniques_end_to_end() {
    run_all_techniques("rayleigh:doppler=10+burst-noise:p=0.05,db=10");
}
