//! Property-based tests on the core invariants of the reproduction.

use proptest::prelude::*;
use vvd::dsp::{convolution_matrix, convolve_full, least_squares, CVec, Complex, FirFilter};
use vvd::estimation::phase::align_mean_phase;
use vvd::estimation::zf::ZfEqualizer;
use vvd::phy::crc::{append_fcs, check_fcs};
use vvd::phy::pn::{best_matching_symbol, chip_sequence_bipolar};
use vvd::phy::symbols::{octets_to_symbols, symbols_to_chips, symbols_to_octets};
use vvd::phy::{modulate_frame, PhyConfig, PsduBuilder, Receiver};

/// Strategy for a non-degenerate complex channel of 2..=11 taps whose
/// dominant tap is not vanishingly small.
fn channel_strategy() -> impl Strategy<Value = FirFilter> {
    (
        2usize..=11,
        proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 11),
    )
        .prop_map(|(n, raw)| {
            let mut taps: Vec<Complex> = raw[..n]
                .iter()
                .map(|&(re, im)| Complex::new(re * 0.3, im * 0.3))
                .collect();
            // Force a clear dominant tap so the channel is invertible.
            let dominant = n / 2;
            taps[dominant] = Complex::new(1.0, 0.4);
            FirFilter::from_taps(&taps)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// LS estimation on a clean convolution recovers the channel that
    /// generated it, for arbitrary channels and reference signals.
    #[test]
    fn ls_estimation_recovers_arbitrary_channels(
        channel in channel_strategy(),
        reference in proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 64..128),
    ) {
        let reference: Vec<Complex> = reference.iter().map(|&(re, im)| Complex::new(re, im)).collect();
        // Skip degenerate all-tiny references.
        prop_assume!(reference.iter().map(|z| z.norm_sqr()).sum::<f64>() > 1.0);
        let received = convolve_full(&reference, channel.taps().as_slice());
        let x = convolution_matrix(&reference, channel.len());
        let estimate = least_squares(&x, &received).unwrap();
        let err = CVec(estimate.to_vec()).squared_error(channel.taps());
        prop_assert!(err < 1e-12, "estimation error {err}");
    }

    /// The ZF equalizer inverts every channel drawn from the strategy: the
    /// cascade of channel and equalizer concentrates its energy on the
    /// design delay.
    #[test]
    fn zf_equalizer_concentrates_cascade_energy(channel in channel_strategy()) {
        let eq = ZfEqualizer::design(&channel, 31).unwrap();
        prop_assert!(eq.residual_isi(&channel) < 0.2, "residual ISI {}", eq.residual_isi(&channel));
    }

    /// Mean-phase alignment undoes any common rotation of a channel
    /// estimate.
    #[test]
    fn phase_alignment_is_rotation_invariant(
        channel in channel_strategy(),
        theta in -std::f64::consts::PI..std::f64::consts::PI,
    ) {
        let rotated = channel.rotated(Complex::cis(theta));
        let (aligned, _) = align_mean_phase(&rotated, &channel);
        let err = aligned.taps().squared_error(channel.taps()) / channel.energy();
        prop_assert!(err < 1e-18, "alignment error {err}");
    }

    /// The FCS detects any single corrupted octet.
    #[test]
    fn crc_detects_single_octet_corruption(
        payload in proptest::collection::vec(any::<u8>(), 4..64),
        corrupt_index in any::<prop::sample::Index>(),
        corruption in 1u8..=255,
    ) {
        let psdu = append_fcs(&payload);
        prop_assert!(check_fcs(&psdu));
        let mut corrupted = psdu.clone();
        let idx = corrupt_index.index(corrupted.len());
        corrupted[idx] ^= corruption;
        prop_assert!(!check_fcs(&corrupted));
    }

    /// Bit → symbol → chip → symbol → bit roundtrips for arbitrary payloads,
    /// even with per-chip attenuation.
    #[test]
    fn spreading_roundtrip_is_lossless(
        octets in proptest::collection::vec(any::<u8>(), 1..64),
        gain in 0.01f64..2.0,
    ) {
        let symbols = octets_to_symbols(&octets);
        let chips: Vec<f64> = symbols_to_chips(&symbols).iter().map(|c| c * gain).collect();
        let recovered: Vec<u8> = chips
            .chunks_exact(32)
            .map(best_matching_symbol)
            .collect();
        prop_assert_eq!(&recovered, &symbols);
        prop_assert_eq!(symbols_to_octets(&recovered), octets);
    }

    /// Despreading tolerates up to 4 arbitrary chip flips per symbol (the
    /// worst-case pairwise chip distance within the extended 16-sequence
    /// alphabet is 12 chips, so 5 adversarial flips can already tie).
    #[test]
    fn despreading_is_robust_to_chip_errors(
        symbol in 0u8..16,
        flips in proptest::collection::hash_set(0usize..32, 0..=4),
    ) {
        let mut chips = chip_sequence_bipolar(symbol);
        for &f in &flips {
            chips[f] = -chips[f];
        }
        prop_assert_eq!(best_matching_symbol(&chips), symbol);
    }

    /// A clean modulated frame decodes without errors after an arbitrary
    /// common phase rotation (standard decoding corrects the mean phase).
    #[test]
    fn standard_decoding_is_phase_invariant(
        seq in 0u16..512,
        theta in -std::f64::consts::PI..std::f64::consts::PI,
    ) {
        let cfg = PhyConfig::short_packets(8);
        let tx = modulate_frame(&cfg, &PsduBuilder::new(&cfg).build(seq));
        let rotated = tx.waveform.rotate(Complex::cis(theta));
        let receiver = Receiver::new(cfg);
        let outcome = receiver.decode_standard(rotated.as_slice(), &tx);
        prop_assert!(outcome.crc_ok);
        prop_assert_eq!(outcome.chip_errors, 0);
    }
}
