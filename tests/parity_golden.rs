//! Pipeline parity: the streaming estimator pipeline must reproduce the
//! metrics of the original (pre-registry) `evaluate_combination` harness
//! bit for bit, sequentially and in parallel.
//!
//! The golden values below were produced by the seed harness — the
//! monolithic per-technique `match` that this repository shipped before the
//! estimator API existed — on `EvalConfig::tiny()`, combination 1, all 14
//! techniques (and the Figs. 16–17 aging sweep on the same combination).
//! Every floating-point literal is the shortest round-trip representation
//! of the exact `f64` the seed produced; comparisons are `==`, not
//! approximate.  All arithmetic involved is IEEE-deterministic, so the
//! values are independent of optimisation level and thread scheduling.

use std::sync::OnceLock;
use vvd::estimation::Technique;
use vvd::testbed::aging::aging_sweep;
use vvd::testbed::{
    combinations_for, evaluate_combination_with, Campaign, EvalConfig, EvalOptions,
};

/// `(label, PER, CER, MSE, scored packets)` per technique, from the seed
/// harness on the tiny preset.
const GOLDEN_METRICS: [(&str, f64, f64, Option<f64>, usize); 14] = [
    ("Standard Decoding", 0.0, 0.137587890625, None, 50),
    ("Ground Truth", 0.02, 0.1396875, Some(0.0), 50),
    (
        "Preamble Based",
        0.36,
        0.443662109375,
        Some(2.58283806210791e-6),
        50,
    ),
    (
        "Preamble Based-Genie",
        0.02,
        0.142744140625,
        Some(2.55298394499921e-6),
        50,
    ),
    (
        "100ms Previous",
        0.18,
        0.177421875,
        Some(9.242453679748771e-7),
        50,
    ),
    (
        "500ms Previous",
        0.18,
        0.191318359375,
        Some(1.0301575003851773e-6),
        50,
    ),
    (
        "Kalman AR(1)",
        0.16,
        0.1687890625,
        Some(5.784456664929546e-7),
        50,
    ),
    (
        "Kalman AR(5)",
        0.14,
        0.166943359375,
        Some(5.549432149776709e-7),
        50,
    ),
    (
        "Kalman AR(20)",
        0.12,
        0.173349609375,
        Some(6.713929935346112e-7),
        50,
    ),
    (
        "VVD-Current",
        0.08,
        0.157607421875,
        Some(5.343644688177597e-7),
        50,
    ),
    (
        "VVD-33.3ms Future",
        0.08,
        0.15634765625,
        Some(5.330039928679824e-7),
        50,
    ),
    (
        "VVD-100ms Future",
        0.1,
        0.15658203125,
        Some(5.335800814020664e-7),
        50,
    ),
    (
        "Preamble-VVD Combined",
        0.06,
        0.14970703125,
        Some(1.864936452103271e-6),
        50,
    ),
    (
        "Preamble-Kalman Combined",
        0.06,
        0.151318359375,
        Some(1.8919933468616509e-6),
        50,
    ),
];

/// The seed harness's Fig.-15 time series on the same run, encoded one
/// character per scored packet: `#`/`B` both decoded (`B` = LoS blocked),
/// `v` only VVD decoded, `g` only ground truth decoded, `.` neither.
const GOLDEN_TIME_SERIES: &str = "v####g#######BBBBgBBBg########g###################";

fn tiny_campaign() -> &'static Campaign {
    static CAMPAIGN: OnceLock<Campaign> = OnceLock::new();
    CAMPAIGN.get_or_init(|| Campaign::generate(&EvalConfig::tiny()))
}

#[test]
fn streaming_pipeline_reproduces_the_seed_harness_exactly() {
    let campaign = tiny_campaign();
    let combos = combinations_for(campaign.config.n_sets, campaign.config.n_combinations);

    let sequential = evaluate_combination_with(
        campaign,
        &combos[0],
        &Technique::ALL,
        &EvalOptions { parallel: false },
    );
    let parallel = evaluate_combination_with(
        campaign,
        &combos[0],
        &Technique::ALL,
        &EvalOptions { parallel: true },
    );

    // --- Golden metrics, exact ------------------------------------------
    assert_eq!(sequential.metrics.len(), GOLDEN_METRICS.len());
    for (label, per, cer, mse, packets) in GOLDEN_METRICS {
        let m = sequential
            .metrics
            .get(label)
            .unwrap_or_else(|| panic!("missing metrics for {label}"));
        assert_eq!(m.per, per, "{label}: PER");
        assert_eq!(m.cer, cer, "{label}: CER");
        assert_eq!(m.mse, mse, "{label}: MSE");
        assert_eq!(m.packets, packets, "{label}: packets");
    }

    // --- Golden time series, exact --------------------------------------
    let encoded: String = sequential
        .time_series
        .iter()
        .map(|p| match (p.vvd_success, p.ground_truth_success) {
            (true, true) if p.los_blocked => 'B',
            (true, true) => '#',
            (true, false) => 'v',
            (false, true) => 'g',
            (false, false) => '.',
        })
        .collect();
    assert_eq!(encoded, GOLDEN_TIME_SERIES);

    // --- Parallel execution is bit-identical ----------------------------
    assert_eq!(sequential.metrics, parallel.metrics);
    assert_eq!(sequential.time_series, parallel.time_series);
    assert_eq!(sequential.vvd_reports, parallel.vvd_reports);

    // --- Determinism: a second parallel run repeats itself --------------
    let parallel_again = evaluate_combination_with(
        campaign,
        &combos[0],
        &Technique::ALL,
        &EvalOptions { parallel: true },
    );
    assert_eq!(parallel.metrics, parallel_again.metrics);
    assert_eq!(parallel.time_series, parallel_again.time_series);
}

#[test]
fn aging_sweep_reproduces_the_seed_harness_exactly() {
    let campaign = tiny_campaign();
    let combos = combinations_for(campaign.config.n_sets, campaign.config.n_combinations);
    let curves = aging_sweep(
        campaign,
        &combos[0],
        &[0.0, 0.5, 2.0],
        &[Technique::PreambleBasedGenie, Technique::VvdCurrent],
    );
    assert_eq!(curves.len(), 2);

    assert_eq!(curves[0].technique, Technique::PreambleBasedGenie);
    assert_eq!(
        curves[0].mse,
        vec![
            2.5183091604641155e-6,
            3.92600874580797e-6,
            3.9647119016940344e-6
        ]
    );
    assert_eq!(curves[0].per, vec![0.0, 0.525, 0.525]);

    assert_eq!(curves[1].technique, Technique::VvdCurrent);
    assert_eq!(
        curves[1].mse,
        vec![
            5.522000957253948e-7,
            5.514302529961391e-7,
            5.472300170829033e-7
        ]
    );
    assert_eq!(curves[1].per, vec![0.075, 0.1, 0.1]);
}
