//! Scenario-engine parity: the `"paper"` scenario routed through the new
//! `ChannelScenario` trait must reproduce the pre-refactor CIR generation
//! path bit for bit.
//!
//! The golden values below were captured from the harness as it existed
//! *before* the scenario engine (hard-wired `Room::laboratory()` +
//! `RandomWaypoint` + `CirSynthesizer` inside `Campaign::generate`), on
//! `EvalConfig::smoke()`.  Every literal is the shortest round-trip
//! representation of the exact `f64` the old code produced; comparisons
//! are `==`, not approximate.  The sums run in packet/frame order, so they
//! also pin the ordering of the parallel synthesis phase.

use vvd::testbed::{Campaign, EvalConfig};

/// Per-set digests of the pre-scenario-engine `Campaign::generate`:
/// `(fir_sum, perfect_sum, phase_sum, p0_tap5, p10_blocker, img_sum,
/// detected)` where the sums fold over packets/frames in order.
#[allow(clippy::type_complexity)]
const GOLDEN_SETS: [(
    (f64, f64),
    (f64, f64),
    f64,
    (f64, f64),
    (f64, f64),
    f64,
    usize,
); 3] = [
    (
        (0.019980989282112713, -0.0907941135884553),
        (0.016115583747991588, 0.000824998841149958),
        9.912800639258185,
        (-0.0012991372551372404, 0.000981944326910276),
        (4.4114927901283165, 3.6245451564536957),
        239363.32049164176,
        21,
    ),
    (
        (0.022452424459116438, -0.08830151550231068),
        (0.0069809762458664, -0.00942200965318777),
        -1.959094273518017,
        (-0.00027012268804959107, 0.0005121352238666736),
        (2.8337377118451657, 3.106186526938442),
        241991.69531804323,
        25,
    ),
    (
        (0.013865017609426426, -0.08978690767673918),
        (0.004600146396810119, -0.006959807015239769),
        14.018372012065075,
        (-0.0009730795650267697, 0.0013399170340813117),
        (4.341025051669475, 3.7826358863378866),
        243054.7396442592,
        26,
    ),
];

/// The exact noise standard deviation the old harness calibrated for the
/// smoke preset (identical across sets).
const GOLDEN_NOISE_STD: f64 = 0.0049960073143747825;

fn assert_matches_golden(campaign: &Campaign) {
    assert_eq!(campaign.sets.len(), GOLDEN_SETS.len());
    for (set, golden) in campaign.sets.iter().zip(&GOLDEN_SETS) {
        let (fir_sum, perfect_sum, phase_sum, p0_tap5, p10_blocker, img_sum, detected) = *golden;

        let mut fir = (0.0f64, 0.0f64);
        let mut perfect = (0.0f64, 0.0f64);
        let mut phase = 0.0f64;
        for p in &set.packets {
            for t in p.realization.fir.taps().iter() {
                fir.0 += t.re;
                fir.1 += t.im;
            }
            for t in p.perfect_cir.taps().iter() {
                perfect.0 += t.re;
                perfect.1 += t.im;
            }
            phase += p.realization.phase_offset;
        }
        assert_eq!(fir, fir_sum, "set {}: fir digest", set.set_id);
        assert_eq!(
            perfect, perfect_sum,
            "set {}: perfect-CIR digest",
            set.set_id
        );
        assert_eq!(phase, phase_sum, "set {}: crystal-phase digest", set.set_id);

        let p0 = &set.packets[0];
        assert_eq!(p0.realization.noise_std, GOLDEN_NOISE_STD);
        assert_eq!(
            (
                p0.realization.fir.taps()[5].re,
                p0.realization.fir.taps()[5].im
            ),
            p0_tap5,
            "set {}: packet-0 tap 5",
            set.set_id
        );

        assert_eq!(set.packets[10].blockers.len(), 1);
        assert_eq!(
            set.packets[10].blockers[0], p10_blocker,
            "set {}: interpolated blocker position",
            set.set_id
        );

        let img: f64 = set
            .frames
            .iter()
            .flat_map(|f| f.image.data().iter())
            .map(|&v| v as f64)
            .sum();
        assert_eq!(img, img_sum, "set {}: depth-image digest", set.set_id);

        let n_detected = set.packets.iter().filter(|p| p.preamble_detected).count();
        assert_eq!(
            n_detected, detected,
            "set {}: preamble detections",
            set.set_id
        );
    }
}

#[test]
fn paper_scenario_reproduces_the_prerefactor_cir_path_exactly() {
    let campaign = Campaign::generate(&EvalConfig::smoke());
    assert_eq!(campaign.scenario, "paper");
    assert_matches_golden(&campaign);
}

#[test]
fn registry_built_paper_scenario_is_identical_to_the_default_path() {
    let campaign = Campaign::generate_spec(&EvalConfig::smoke(), "paper").unwrap();
    assert_matches_golden(&campaign);
}
