//! Checkpoint/resume golden: a serve run interrupted at **any** tick and
//! resumed from its checkpoint — in a fresh engine or in a fresh OS
//! process — must produce a [`ServeReport`](vvd::serve::ServeReport) whose
//! digest is **bit-identical** to the uninterrupted run.  The resume
//! replays nothing: the workload rebuild re-derives every fit product
//! deterministically and the checkpoint restores exactly the streaming
//! state (estimator state, trace, cursor, schedule position).
//!
//! Also pinned here: the on-disk checkpoint store heals — corrupt,
//! truncated or wrong-version frames surface typed errors on direct loads
//! and are skipped in favour of the newest intact frame.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::Command;
use std::sync::Arc;
use vvd::serve::{
    load_checkpoint_file, serve, CheckpointError, CheckpointStore, DirCheckpointStore,
    EngineCheckpoint, LoadGenerator, ServeEngine, ServeOptions, SessionSpec, Workload,
};
use vvd::testbed::{Campaign, EvalConfig};

/// Env var carrying the checkpoint directory into the re-executed child.
const CHILD_DIR_ENV: &str = "VVD_CKPT_GOLDEN_DIR";
/// Env var carrying the expected digest into the re-executed child.
const CHILD_DIGEST_ENV: &str = "VVD_CKPT_GOLDEN_DIGEST";

fn golden_config() -> EvalConfig {
    let mut cfg = EvalConfig::smoke();
    cfg.n_sets = 3;
    cfg.packets_per_set = 24;
    cfg.kalman_warmup_packets = 4;
    cfg.max_vvd_training_samples = 40;
    cfg
}

/// The mixed 8-session campaign: two scenarios, heterogeneous arrival
/// schedules, and every estimator family that carries streaming state —
/// including a VVD head (model-cache rehydration) and a fallback chain
/// (recursive state).
fn golden_specs() -> Vec<SessionSpec> {
    let scenarios = ["paper", "rician:k=6,doppler=30"];
    let estimators = [
        "ground-truth",
        "previous:100ms",
        "vvd:current",
        "fallback:preamble,vvd:current",
        "kalman:ar=2",
        "standard",
        "preamble",
        "fallback:preamble,kalman:ar=2",
    ];
    (0..8)
        .map(|i| {
            SessionSpec::new(scenarios[i % 2], estimators[i])
                .every((i % 3 + 1) as u64)
                .offset((i % 4) as u64)
        })
        .collect()
}

/// Builds the golden workload, sharing pre-generated campaigns so repeated
/// builds inside one test don't regenerate them (generation is
/// deterministic, so sharing is a pure speedup — the child process proves
/// that by regenerating from scratch).
fn build_workload(campaigns: &BTreeMap<String, Arc<Campaign>>) -> Workload {
    let mut generator = LoadGenerator::new(golden_config());
    for (spec, campaign) in campaigns {
        generator = generator.with_campaign(spec.clone(), Arc::clone(campaign));
    }
    generator.build(&golden_specs()).expect("specs are valid")
}

fn golden_campaigns() -> BTreeMap<String, Arc<Campaign>> {
    let cfg = golden_config();
    ["paper", "rician:k=6,doppler=30"]
        .into_iter()
        .map(|s| {
            (
                s.to_string(),
                Arc::new(Campaign::generate_spec(&cfg, s).expect("scenario is valid")),
            )
        })
        .collect()
}

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("vvd-ckpt-golden-{tag}-{}", std::process::id()))
}

#[test]
fn resume_at_first_mid_and_last_tick_matches_the_uninterrupted_digest() {
    let campaigns = golden_campaigns();

    // The uninterrupted reference.
    let reference = serve(
        build_workload(&campaigns),
        &ServeOptions {
            shards: 2,
            ..ServeOptions::default()
        },
    );
    let total_ticks = reference.ticks;
    assert!(total_ticks > 2, "campaign too small to split");

    // T = 0 (nothing served yet), mid-stream, and the final tick (the
    // engine is already drained; resume must be a no-op replay).
    for at_tick in [0, total_ticks / 2, total_ticks] {
        let mut engine = ServeEngine::new(
            build_workload(&campaigns),
            &ServeOptions {
                shards: 2,
                ..ServeOptions::default()
            },
        );
        engine.run_ticks(at_tick);
        assert_eq!(engine.ticks(), at_tick);
        let frame = engine
            .checkpoint()
            .expect("tick boundaries always checkpoint")
            .to_frame();
        drop(engine);

        // A fresh engine over a freshly rebuilt workload, different shard
        // count — topology must stay invisible.
        let checkpoint = EngineCheckpoint::from_frame(&frame).expect("own frame decodes");
        let mut resumed = ServeEngine::resume(
            build_workload(&campaigns),
            &ServeOptions {
                shards: 5,
                ..ServeOptions::default()
            },
            &checkpoint,
        )
        .expect("own checkpoint resumes");
        assert_eq!(resumed.ticks(), at_tick);
        while !resumed.finished() {
            resumed.run_ticks(7);
        }
        let report = resumed.finish();
        assert_eq!(
            report.digest(),
            reference.digest(),
            "resume at tick {at_tick}/{total_ticks} diverged"
        );
        assert_eq!(report.packets_streamed, reference.packets_streamed);
    }
}

/// The helper half of the fresh-process golden: only runs when re-executed
/// by [`resume_in_a_fresh_process_matches_the_uninterrupted_digest`] with
/// the env vars set.  Rebuilds the whole workload from scratch (campaign
/// regeneration, model retraining — all deterministic), resumes from the
/// newest on-disk checkpoint and checks the digest it was promised.
#[test]
fn helper_resume_from_disk_in_child_process() {
    let (Ok(dir), Ok(digest)) = (
        std::env::var(CHILD_DIR_ENV),
        std::env::var(CHILD_DIGEST_ENV),
    ) else {
        return; // Not the child: nothing to do.
    };
    let expected: u64 = digest.parse().expect("digest env var is a u64");
    let store = DirCheckpointStore::new(&dir).expect("checkpoint dir exists");
    let checkpoint = store
        .load_latest()
        .expect("stored frames are intact")
        .expect("the parent saved at least one frame");
    let mut engine = ServeEngine::resume(
        build_workload(&golden_campaigns()),
        &ServeOptions {
            shards: 3,
            ..ServeOptions::default()
        },
        &checkpoint,
    )
    .expect("checkpoint from the parent process resumes");
    while !engine.finished() {
        engine.run_ticks(16);
    }
    assert_eq!(
        engine.finish().digest(),
        expected,
        "fresh-process resume diverged from the uninterrupted run"
    );
}

#[test]
fn resume_in_a_fresh_process_matches_the_uninterrupted_digest() {
    let campaigns = golden_campaigns();
    let reference = serve(
        build_workload(&campaigns),
        &ServeOptions {
            shards: 2,
            ..ServeOptions::default()
        },
    );

    // Run the first half with a periodic on-disk checkpoint policy, then
    // abandon the engine — the "crash".
    let dir = temp_dir("proc");
    let _ = std::fs::remove_dir_all(&dir);
    let store = DirCheckpointStore::new(&dir).expect("temp dir is creatable");
    let mut engine = ServeEngine::new(
        build_workload(&campaigns),
        &ServeOptions {
            shards: 2,
            ..ServeOptions::default()
        },
    )
    .with_checkpoints(Box::new(store), 3);
    engine.run_ticks(reference.ticks / 2);
    assert!(
        engine.checkpoint_error().is_none(),
        "periodic checkpointing failed: {:?}",
        engine.checkpoint_error()
    );
    drop(engine);

    // Re-execute this test binary filtered to the helper test: a genuinely
    // fresh process resumes from disk and verifies the digest itself.
    let exe = std::env::current_exe().expect("test binary path");
    let status = Command::new(exe)
        .args([
            "--exact",
            "helper_resume_from_disk_in_child_process",
            "--nocapture",
            "--test-threads",
            "1",
        ])
        .env(CHILD_DIR_ENV, &dir)
        .env(CHILD_DIGEST_ENV, reference.digest().to_string())
        .status()
        .expect("child test process spawns");
    assert!(status.success(), "fresh-process resume failed: {status}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn disk_store_surfaces_typed_errors_and_heals_to_the_previous_good_frame() {
    let campaigns = golden_campaigns();
    let dir = temp_dir("heal");
    let _ = std::fs::remove_dir_all(&dir);
    let mut store = DirCheckpointStore::new(&dir).expect("temp dir is creatable");

    // Two good frames at ticks 2 and 4.
    let mut engine = ServeEngine::new(
        build_workload(&campaigns),
        &ServeOptions {
            shards: 1,
            ..ServeOptions::default()
        },
    );
    engine.run_ticks(2);
    store
        .save(&engine.checkpoint().expect("tick boundary"))
        .expect("first frame saves");
    engine.run_ticks(2);
    let good = engine.checkpoint().expect("tick boundary");
    store.save(&good).expect("second frame saves");

    // Direct loads of damaged files are typed errors, not panics.
    let good_path = dir.join("ckpt-00000000000000000004.vvdc");
    let bytes = std::fs::read(&good_path).expect("saved frame is readable");

    let truncated = dir.join("ckpt-00000000000000000006.vvdc");
    std::fs::write(&truncated, &bytes[..bytes.len() - 7]).expect("writable");
    assert!(matches!(
        load_checkpoint_file(&truncated),
        Err(CheckpointError::Truncated { .. })
    ));

    let mut wrong_version = bytes.clone();
    wrong_version[4] = 0xEE;
    wrong_version[5] = 0xEE;
    let versioned = dir.join("ckpt-00000000000000000008.vvdc");
    std::fs::write(&versioned, &wrong_version).expect("writable");
    assert!(matches!(
        load_checkpoint_file(&versioned),
        Err(CheckpointError::UnsupportedVersion { found: 0xEEEE })
    ));

    let mut corrupt = bytes.clone();
    corrupt[0] = b'X';
    let corrupted = dir.join("ckpt-00000000000000000010.vvdc");
    std::fs::write(&corrupted, &corrupt).expect("writable");
    assert!(matches!(
        load_checkpoint_file(&corrupted),
        Err(CheckpointError::BadMagic { .. })
    ));

    // load_latest skips all three damaged (lexicographically newer) files
    // and heals to the newest intact frame — the tick-4 checkpoint.
    let healed = store
        .load_latest()
        .expect("an intact frame exists")
        .expect("frames were saved");
    assert_eq!(healed.ticks, 4);
    assert_eq!(healed.to_frame(), good.to_frame(), "healed frame differs");

    // And the healed frame is actually resumable to the reference digest.
    let reference = serve(
        build_workload(&campaigns),
        &ServeOptions {
            shards: 1,
            ..ServeOptions::default()
        },
    );
    let mut resumed = ServeEngine::resume(
        build_workload(&campaigns),
        &ServeOptions {
            shards: 1,
            ..ServeOptions::default()
        },
        &healed,
    )
    .expect("healed checkpoint resumes");
    while !resumed.finished() {
        resumed.run_ticks(9);
    }
    assert_eq!(resumed.finish().digest(), reference.digest());
    let _ = std::fs::remove_dir_all(&dir);
}
