//! Serve-vs-sequential golden: every session served by the sharded,
//! batched `vvd-serve` engine must produce a trace **bit-identical** to
//! running that session alone through the offline streaming pipeline
//! (`vvd_testbed::stream::stream_estimators`) — at shard counts 1, 2
//! and 8, over a mixed-scenario campaign with heterogeneous arrival
//! schedules, with VVD heads whose forward passes the engine batches
//! across sessions.

use std::collections::BTreeMap;
use std::sync::Arc;
use vvd::estimation::estimator::VvdModelPool;
use vvd::estimation::{EstimatorRegistry, Technique};
use vvd::serve::{serve, LoadGenerator, ServeOptions, SessionSpec};
use vvd::testbed::stream::{
    stream_estimators, training_cirs, CombinationDatasets, EstimatorTrace, LabeledEstimator,
    StreamOptions,
};
use vvd::testbed::{combinations_for, Campaign, EvalConfig};

fn golden_config() -> EvalConfig {
    let mut cfg = EvalConfig::smoke();
    cfg.n_sets = 3;
    cfg.packets_per_set = 24;
    cfg.kalman_warmup_packets = 4;
    cfg.max_vvd_training_samples = 40;
    cfg
}

/// The harness label of an estimator spec (same policy as the serving
/// layer and the offline `evaluate_specs`).
fn label_of(spec: &str) -> String {
    spec.parse::<Technique>()
        .map(|t| t.label().to_string())
        .unwrap_or_else(|_| spec.trim().to_string())
}

/// The sequential reference: the session's estimator streamed alone
/// through the offline pipeline over the same campaign and combination.
fn sequential_reference(
    cfg: &EvalConfig,
    campaigns: &BTreeMap<String, Arc<Campaign>>,
    spec: &SessionSpec,
) -> EstimatorTrace {
    let campaign = &campaigns[&spec.scenario];
    let combination = combinations_for(cfg.n_sets, cfg.n_combinations)[spec.combination].clone();
    let cirs = training_cirs(campaign, &combination);
    let source = CombinationDatasets::new(campaign, &combination);
    let pool = VvdModelPool::new(&cfg.vvd, &source);
    let registry = EstimatorRegistry::new();
    let estimator = registry.build(&spec.estimator).expect("spec is valid");
    stream_estimators(
        campaign,
        &combination,
        vec![LabeledEstimator::new(label_of(&spec.estimator), estimator)],
        &cirs,
        &pool,
        &StreamOptions {
            score_from: cfg.kalman_warmup_packets,
            parallel: false,
        },
    )
    .remove(0)
}

fn assert_traces_bit_identical(served: &EstimatorTrace, reference: &EstimatorTrace, what: &str) {
    assert_eq!(served.label, reference.label, "{what}: label");
    assert_eq!(served.scored, reference.scored, "{what}: scored outcomes");
    assert_eq!(
        served.per_packet, reference.per_packet,
        "{what}: per-packet outcomes"
    );
    assert_eq!(
        served.estimates.len(),
        reference.estimates.len(),
        "{what}: estimate count"
    );
    for (i, (a, b)) in served
        .estimates
        .iter()
        .zip(&reference.estimates)
        .enumerate()
    {
        assert_eq!(a.taps(), b.taps(), "{what}: estimate {i}");
    }
    for (i, (a, b)) in served.truths.iter().zip(&reference.truths).enumerate() {
        assert_eq!(a.taps(), b.taps(), "{what}: truth {i}");
    }
}

#[test]
fn serve_matches_the_sequential_pipeline_at_shard_counts_1_2_and_8() {
    let cfg = golden_config();
    let scenarios = ["paper", "rician:k=6,doppler=30"];
    let estimators = [
        "ground-truth",
        "previous:100ms",
        "vvd:current",
        "fallback:preamble,vvd:current",
        "kalman:ar=2",
        "standard",
    ];
    // 8 sessions over a mixed campaign with heterogeneous arrivals; the
    // VVD sessions of each scenario share one trained network.
    let specs: Vec<SessionSpec> = (0..8)
        .map(|i| {
            SessionSpec::new(scenarios[i % 2], estimators[i % estimators.len()])
                .every((i % 3 + 1) as u64)
                .offset((i % 4) as u64)
        })
        .collect();

    // Generate each distinct campaign once and share it between the serve
    // runs and the sequential references (exactly what the load generator
    // would have produced itself).
    let mut campaigns: BTreeMap<String, Arc<Campaign>> = BTreeMap::new();
    for scenario in scenarios {
        campaigns.insert(
            scenario.to_string(),
            Arc::new(Campaign::generate_spec(&cfg, scenario).unwrap()),
        );
    }

    let references: Vec<EstimatorTrace> = specs
        .iter()
        .map(|spec| sequential_reference(&cfg, &campaigns, spec))
        .collect();

    let mut digests = Vec::new();
    for shards in [1usize, 2, 8] {
        let mut generator = LoadGenerator::new(cfg);
        for (spec, campaign) in &campaigns {
            generator = generator.with_campaign(spec.clone(), Arc::clone(campaign));
        }
        let workload = generator.build(&specs).unwrap();
        let report = serve(
            workload,
            &ServeOptions {
                shards,
                ..ServeOptions::default()
            },
        );

        assert_eq!(report.traces.len(), specs.len());
        for ((trace, reference), spec) in report.traces.iter().zip(&references).zip(&specs) {
            assert_traces_bit_identical(
                trace,
                reference,
                &format!(
                    "shards={shards} session `{}`/`{}`",
                    spec.scenario, spec.estimator
                ),
            );
        }
        digests.push(report.digest());
    }
    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "shard counts 1/2/8 must digest identically: {digests:?}"
    );
}

#[test]
fn batched_inference_issues_fewer_forward_calls_than_packets_served() {
    let cfg = golden_config();
    // Eight synchronised sessions over one campaign, all resolving to the
    // *same* trained VVD network (the pure head and the fallback's inner
    // head share training provenance through the workload's model cache).
    let specs: Vec<SessionSpec> = (0..8)
        .map(|i| {
            SessionSpec::new(
                "paper",
                if i % 2 == 0 {
                    "vvd:current"
                } else {
                    "fallback:preamble,vvd:current"
                },
            )
        })
        .collect();
    let campaign = Arc::new(Campaign::generate_spec(&cfg, "paper").unwrap());
    let workload = LoadGenerator::new(cfg)
        .with_campaign("paper", Arc::clone(&campaign))
        .build(&specs)
        .unwrap();
    let report = serve(
        workload,
        &ServeOptions {
            shards: 2,
            ..ServeOptions::default()
        },
    );

    // One training, shared by all eight sessions.
    assert_eq!(report.model_cache.misses, 1, "{}", report.model_cache);
    assert!(report.model_cache.hits >= 7);

    // Every tick coalesces the eight same-model plans into one forward
    // call: occupancy is the full session count, and the engine issued
    // far fewer NN calls than it served packets.
    assert!(report.packets_served > 0);
    assert!(
        report.batches.batch_calls < report.packets_served,
        "batched inference must issue fewer NN forward calls ({}) than packets served ({})",
        report.batches.batch_calls,
        report.packets_served,
    );
    assert!(
        report.batch_occupancy() > 1.0,
        "batch occupancy {} must exceed 1",
        report.batch_occupancy()
    );
    // The four pure-VVD sessions plan on every scored tick; the fallback
    // sessions join the same batch on ticks whose preamble was missed
    // (their lookahead suppresses the dead forward pass otherwise).
    assert!(report.batches.max_batch >= specs.len() / 2);

    // And batching is invisible in the results: the serve trace matches
    // the sequential pipeline for every session.
    let mut campaigns = BTreeMap::new();
    campaigns.insert("paper".to_string(), campaign);
    for (trace, spec) in report.traces.iter().zip(&specs) {
        let reference = sequential_reference(&cfg, &campaigns, spec);
        assert_traces_bit_identical(trace, &reference, &spec.estimator);
    }
}
