//! Pipeline golden: the double-buffered tick pipeline (`VVD_PIPELINE`) is
//! **pure scheduling** — every digest is bit-identical with the pipeline
//! on or off, at shard counts 1/2/8, across a checkpoint/resume cut that
//! switches pipeline modes mid-run, and across loopback clusters of 1, 2
//! and 4 workers.
//!
//! The pipeline overlaps tick T+1's estimator-independent DSP synthesis
//! (waveform regeneration + preamble least-squares) with tick T's batched
//! inference; prefetched products are consumed only when they line up with
//! the committed cursor, so correctness never depends on the lookahead
//! being right — only speed does.

use std::collections::BTreeMap;
use std::sync::Arc;
use vvd::net::{serve_cluster, ClusterOptions, WorkerBackend};
use vvd::serve::{
    serve, EngineCheckpoint, LoadGenerator, ServeEngine, ServeOptions, SessionSpec, Workload,
};
use vvd::testbed::{Campaign, EvalConfig};

fn golden_config() -> EvalConfig {
    let mut cfg = EvalConfig::smoke();
    cfg.n_sets = 3;
    cfg.packets_per_set = 24;
    cfg.kalman_warmup_packets = 4;
    cfg.max_vvd_training_samples = 40;
    cfg
}

/// Mixed workload with VVD heads (batched inference to overlap against)
/// and fallback chains (sessions whose regen need is data-dependent), over
/// two scenarios with heterogeneous arrivals.
fn golden_specs() -> Vec<SessionSpec> {
    let scenarios = ["paper", "rician:k=6,doppler=30"];
    let estimators = [
        "vvd:current",
        "fallback:preamble,vvd:current",
        "previous:100ms",
        "kalman:ar=2",
        "standard",
        "preamble",
    ];
    (0..8)
        .map(|i| {
            SessionSpec::new(scenarios[(i / 2) % 2], estimators[i % estimators.len()])
                .every((i % 3 + 1) as u64)
                .offset((i % 4) as u64)
        })
        .collect()
}

fn golden_campaigns() -> BTreeMap<String, Arc<Campaign>> {
    let cfg = golden_config();
    ["paper", "rician:k=6,doppler=30"]
        .into_iter()
        .map(|s| {
            (
                s.to_string(),
                Arc::new(Campaign::generate_spec(&cfg, s).expect("scenario is valid")),
            )
        })
        .collect()
}

fn build_workload(campaigns: &BTreeMap<String, Arc<Campaign>>) -> Workload {
    let mut generator = LoadGenerator::new(golden_config());
    for (spec, campaign) in campaigns {
        generator = generator.with_campaign(spec.clone(), Arc::clone(campaign));
    }
    generator.build(&golden_specs()).expect("specs are valid")
}

fn options(shards: usize, pipeline: bool) -> ServeOptions {
    ServeOptions { shards, pipeline }
}

#[test]
fn pipeline_on_and_off_digest_identically_at_shard_counts_1_2_and_8() {
    let campaigns = golden_campaigns();
    let reference = serve(build_workload(&campaigns), &options(1, false));
    assert_eq!(
        reference.phases.window,
        std::time::Duration::ZERO,
        "pipeline-off runs record no overlap window"
    );

    for shards in [1usize, 2, 8] {
        for pipeline in [false, true] {
            let report = serve(build_workload(&campaigns), &options(shards, pipeline));
            assert_eq!(
                report.digest(),
                reference.digest(),
                "digest diverged at shards={shards} pipeline={pipeline}"
            );
            assert_eq!(report.ticks, reference.ticks);
            assert_eq!(report.packets_streamed, reference.packets_streamed);
            // Trace equality is stronger than the digest: every scored
            // outcome and every estimate bit.
            for (served, base) in report.traces.iter().zip(&reference.traces) {
                assert_eq!(served.scored, base.scored);
                assert_eq!(served.per_packet, base.per_packet);
                for (a, b) in served.estimates.iter().zip(&base.estimates) {
                    assert_eq!(a.taps(), b.taps());
                }
            }
            if pipeline {
                // The pipeline ran: phase accounting is live and sane.
                assert!(report.phases.window > std::time::Duration::ZERO);
                assert!((0.0..=100.0).contains(&report.phases.overlap_pct()));
            }
        }
    }
}

#[test]
fn checkpoint_cut_that_switches_pipeline_modes_matches_the_uninterrupted_digest() {
    let campaigns = golden_campaigns();
    let reference = serve(build_workload(&campaigns), &options(2, false));
    let total_ticks = reference.ticks;
    assert!(total_ticks > 2, "campaign too small to split");

    // Cut mid-run with the pipeline in one mode and resume in the other —
    // both directions.  The prefetch buffer is transient (never
    // checkpointed, recomputed after resume), so the cut cannot leak
    // pipeline state across the boundary.
    for (before, after) in [(true, false), (false, true), (true, true)] {
        let mut engine = ServeEngine::new(build_workload(&campaigns), &options(2, before));
        engine.run_ticks(total_ticks / 2);
        let frame = engine
            .checkpoint()
            .expect("tick boundaries always checkpoint")
            .to_frame();
        drop(engine);

        let checkpoint = EngineCheckpoint::from_frame(&frame).expect("own frame decodes");
        let mut resumed =
            ServeEngine::resume(build_workload(&campaigns), &options(5, after), &checkpoint)
                .expect("own checkpoint resumes");
        while !resumed.finished() {
            resumed.run_ticks(1);
        }
        let report = resumed.finish();
        assert_eq!(
            report.digest(),
            reference.digest(),
            "digest diverged across a pipeline={before} -> pipeline={after} cut"
        );
    }
}

#[test]
fn loopback_clusters_of_1_2_and_4_workers_digest_identically_either_way() {
    let cfg = golden_config();
    let specs = golden_specs();
    let reference = serve(
        LoadGenerator::new(cfg)
            .build(&specs)
            .expect("specs are valid"),
        &options(1, false),
    );

    for workers in [1usize, 2, 4] {
        for pipeline in [false, true] {
            let report = serve_cluster(
                &cfg,
                &specs,
                &ClusterOptions {
                    workers,
                    shards: 2,
                    granularity: 3,
                    cache_dir: None,
                    backend: WorkerBackend::Loopback,
                    checkpoints: false,
                    pipeline,
                    fault: None,
                },
            )
            .expect("cluster serve succeeds");
            assert_eq!(
                report.digest(),
                reference.digest(),
                "digest diverged at workers={workers} pipeline={pipeline}"
            );
        }
    }
}
