//! Cross-crate integration tests: PHY + channel + estimation + testbed.

use rand::rngs::StdRng;
use rand::SeedableRng;
use vvd::channel::{apply_channel, ChannelRealization, CirConfig, CirSynthesizer, Human, Room};
use vvd::dsp::Complex;
use vvd::estimation::decode::decode_with_estimate;
use vvd::estimation::ls::{perfect_estimate, preamble_estimate};
use vvd::estimation::{EqualizerConfig, Technique};
use vvd::phy::{modulate_frame, PhyConfig, PsduBuilder, Receiver};
use vvd::testbed::{combinations_for, evaluate_combination, Campaign, EvalConfig};

/// A packet passed through the geometric channel simulator decodes cleanly
/// when equalized with the ground-truth estimate, for several human
/// positions (clear and blocking the LoS).
#[test]
fn ground_truth_equalization_decodes_through_simulated_channel() {
    let phy = PhyConfig::short_packets(16);
    let receiver = Receiver::new(phy);
    let tx = modulate_frame(&phy, &PsduBuilder::new(&phy).build(3));
    let synth = CirSynthesizer::new(Room::laboratory(), CirConfig::default());
    let mut rng = StdRng::seed_from_u64(1);

    for (x, y) in [(2.2, 4.5), (4.0, 3.0), (5.5, 2.0)] {
        let cir = synth.cir(&Human::at(x, y), &mut rng);
        let realization = ChannelRealization {
            fir: cir,
            phase_offset: 0.7,
            noise_std: 0.0,
        };
        let received = apply_channel(&tx.waveform, &realization, &mut rng);
        let estimate = perfect_estimate(&tx, received.as_slice(), 11).unwrap();
        let outcome = decode_with_estimate(
            &receiver,
            &tx,
            received.as_slice(),
            &estimate,
            &EqualizerConfig {
                align_phase: false,
                ..EqualizerConfig::default()
            },
        );
        assert!(
            outcome.crc_ok,
            "position ({x},{y}): {} chip errors",
            outcome.chip_errors
        );
    }
}

/// The preamble-based estimate decodes noiseless packets as well as the
/// ground truth does; under strong blockage plus noise it degrades.
#[test]
fn preamble_estimate_matches_ground_truth_without_noise() {
    let phy = PhyConfig::short_packets(16);
    let receiver = Receiver::new(phy);
    let tx = modulate_frame(&phy, &PsduBuilder::new(&phy).build(9));
    let synth = CirSynthesizer::new(Room::laboratory(), CirConfig::default());
    let mut rng = StdRng::seed_from_u64(5);
    let cir = synth.cir(&Human::at(3.1, 2.4), &mut rng);
    let realization = ChannelRealization {
        fir: cir,
        phase_offset: -1.2,
        noise_std: 0.0,
    };
    let received = apply_channel(&tx.waveform, &realization, &mut rng);
    let est = preamble_estimate(&tx, received.as_slice(), 11).unwrap();
    let outcome = decode_with_estimate(
        &receiver,
        &tx,
        received.as_slice(),
        &est,
        &EqualizerConfig {
            align_phase: false,
            ..EqualizerConfig::default()
        },
    );
    assert!(outcome.crc_ok);
    assert_eq!(outcome.chip_errors, 0);
}

/// A miniature end-to-end evaluation produces internally consistent metrics
/// with the expected qualitative ordering.
#[test]
fn smoke_evaluation_orders_classical_techniques_sensibly() {
    let campaign = Campaign::generate(&EvalConfig::smoke());
    let combos = combinations_for(campaign.config.n_sets, 1);
    let techniques = [
        Technique::StandardDecoding,
        Technique::GroundTruth,
        Technique::PreambleBasedGenie,
        Technique::Previous100ms,
        Technique::Previous500ms,
        Technique::KalmanAr1,
    ];
    let result = evaluate_combination(&campaign, &combos[0], &techniques);

    let per = |t: Technique| result.metric(t).unwrap().per;
    let cer = |t: Technique| result.metric(t).unwrap().cer;
    let mse = |t: Technique| result.metric(t).unwrap().mse.unwrap();

    // Every rate is a valid probability.
    for t in techniques {
        assert!((0.0..=1.0).contains(&per(t)), "{t}: PER {}", per(t));
        assert!((0.0..=1.0).contains(&cer(t)), "{t}: CER {}", cer(t));
    }
    // Ground truth is the performance bound among estimate-based techniques
    // (standard decoding is excluded from this ordering: with the clean
    // simulated DSSS receiver, skipping ZF noise enhancement can make it
    // competitive at low SNR — see EXPERIMENTS.md).
    assert!(per(Technique::GroundTruth) <= per(Technique::Previous500ms) + 0.05);
    assert!(cer(Technique::GroundTruth) <= cer(Technique::Previous500ms) + 1e-3);
    // A 100 ms old estimate cannot be much worse (in MSE) than a 500 ms old
    // one on average.
    assert!(mse(Technique::Previous100ms) <= mse(Technique::Previous500ms) * 1.5);
    // The genie preamble estimate produces a usable channel estimate: its
    // MSE stays within an order of magnitude of the stale 500 ms estimate
    // (at the low operating SNR the SHR-only LS fit is noisier than a
    // full-packet fit from another time, so it is not strictly better).
    assert!(mse(Technique::PreambleBasedGenie) <= mse(Technique::Previous500ms) * 10.0);
    assert!(mse(Technique::PreambleBasedGenie).is_finite());
}

/// Crystal phase offsets of arbitrary size never break ground-truth
/// decoding: the perfect estimate absorbs them.
#[test]
fn phase_offsets_are_absorbed_by_perfect_estimation() {
    let phy = PhyConfig::short_packets(8);
    let receiver = Receiver::new(phy);
    let tx = modulate_frame(&phy, &PsduBuilder::new(&phy).build(1));
    let synth = CirSynthesizer::new(Room::laboratory(), CirConfig::default());
    let mut rng = StdRng::seed_from_u64(11);
    let cir = synth.deterministic_cir(&Human::at(2.5, 4.0));

    for k in 0..8 {
        let phase = -3.0 + k as f64 * 0.8;
        let realization = ChannelRealization {
            fir: cir.clone(),
            phase_offset: phase,
            noise_std: 0.0,
        };
        let received = apply_channel(&tx.waveform, &realization, &mut rng);
        let estimate = perfect_estimate(&tx, received.as_slice(), 11).unwrap();
        let outcome = decode_with_estimate(
            &receiver,
            &tx,
            received.as_slice(),
            &estimate,
            &EqualizerConfig {
                align_phase: false,
                ..EqualizerConfig::default()
            },
        );
        assert!(outcome.crc_ok, "phase {phase} broke decoding");
    }
}

/// The effective channel (taps + crystal phase) estimated by the perfect LS
/// estimator matches the realisation that generated the waveform.
#[test]
fn perfect_estimate_recovers_effective_channel_of_simulator() {
    let phy = PhyConfig::short_packets(8);
    let tx = modulate_frame(&phy, &PsduBuilder::new(&phy).build(2));
    let synth = CirSynthesizer::new(Room::laboratory(), CirConfig::default());
    let mut rng = StdRng::seed_from_u64(3);
    let cir = synth.cir(&Human::at(4.4, 2.2), &mut rng);
    let realization = ChannelRealization {
        fir: cir,
        phase_offset: 2.1,
        noise_std: 0.0,
    };
    let received = apply_channel(&tx.waveform, &realization, &mut rng);
    let estimate = perfect_estimate(&tx, received.as_slice(), 11).unwrap();
    let effective = realization.effective_fir();
    let rel = estimate.taps().squared_error(effective.taps()) / effective.energy();
    assert!(rel < 1e-12, "relative estimation error {rel}");
    // And the phase offset shows up as the mean phase difference between the
    // aligned and raw channels.
    let raw_phase = estimate.taps().dot_h(realization.fir.taps()).arg();
    assert!((raw_phase - 2.1).abs() < 1e-3);
    let _ = Complex::ONE;
}
