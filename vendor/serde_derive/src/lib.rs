//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored serde
//! subset, written against `proc_macro` alone (no syn/quote: the build
//! environment is offline).
//!
//! Supported shapes — everything the VVD workspace derives on:
//! * structs with named fields,
//! * tuple structs,
//! * enums whose variants are unit or tuple variants.
//!
//! Unsupported shapes (generics, struct variants, unions, discriminants)
//! panic at expansion time with a clear message rather than miscompiling.
//!
//! Encoding: named structs become string-keyed maps, tuple structs and tuple
//! payloads become sequences, unit enum variants become their name as a
//! string, and payload-carrying variants become `{"t": <variant>, "c":
//! [fields...]}`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The shape of the deriving type.
enum Shape {
    /// Struct with named fields.
    NamedStruct { name: String, fields: Vec<String> },
    /// Tuple struct with `arity` fields.
    TupleStruct { name: String, arity: usize },
    /// Enum of unit and tuple variants (`arity == 0` means unit).
    Enum {
        name: String,
        variants: Vec<(String, usize)>,
    },
}

fn is_punct(tree: &TokenTree, ch: char) -> bool {
    matches!(tree, TokenTree::Punct(p) if p.as_char() == ch)
}

fn ident_of(tree: &TokenTree) -> Option<String> {
    match tree {
        TokenTree::Ident(i) => Some(i.to_string()),
        _ => None,
    }
}

/// Advances past any `#[...]` / `#![...]` attributes (including the
/// `#[doc]` attributes that doc comments lower to).
fn skip_attributes(tokens: &[TokenTree], mut i: usize) -> usize {
    while i < tokens.len() && is_punct(&tokens[i], '#') {
        i += 1;
        if i < tokens.len() && is_punct(&tokens[i], '!') {
            i += 1;
        }
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => i += 1,
            _ => panic!("serde_derive: malformed attribute"),
        }
    }
    i
}

/// Advances past `pub`, `pub(crate)`, `pub(in ...)`.
fn skip_visibility(tokens: &[TokenTree], mut i: usize) -> usize {
    if matches!(ident_of(&tokens[i]).as_deref(), Some("pub")) {
        i += 1;
        if let Some(TokenTree::Group(g)) = tokens.get(i) {
            if g.delimiter() == Delimiter::Parenthesis {
                i += 1;
            }
        }
    }
    i
}

/// Splits a field/variant list on commas that sit outside any `<...>`
/// nesting (parens/brackets/braces are already opaque groups).
fn split_top_level(tokens: Vec<TokenTree>) -> Vec<Vec<TokenTree>> {
    let mut chunks = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0i32;
    for tree in tokens {
        if is_punct(&tree, '<') {
            angle_depth += 1;
        } else if is_punct(&tree, '>') {
            angle_depth -= 1;
        } else if is_punct(&tree, ',') && angle_depth == 0 {
            chunks.push(std::mem::take(&mut current));
            continue;
        }
        current.push(tree);
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    chunks
}

/// Extracts the field names of a named-field body.
fn named_fields(group_tokens: Vec<TokenTree>) -> Vec<String> {
    split_top_level(group_tokens)
        .into_iter()
        .filter(|chunk| !chunk.is_empty())
        .map(|chunk| {
            let mut i = skip_attributes(&chunk, 0);
            i = skip_visibility(&chunk, i);
            ident_of(&chunk[i]).expect("serde_derive: expected a field name")
        })
        .collect()
}

fn parse_shape(input: TokenStream) -> Shape {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attributes(&tokens, 0);
    i = skip_visibility(&tokens, i);

    let keyword = ident_of(&tokens[i]).unwrap_or_default();
    i += 1;
    let name = ident_of(&tokens[i]).expect("serde_derive: expected a type name");
    i += 1;
    if i < tokens.len() && is_punct(&tokens[i], '<') {
        panic!("serde_derive: generic types are not supported (deriving on {name})");
    }

    match (keyword.as_str(), tokens.get(i)) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Shape::NamedStruct {
                name,
                fields: named_fields(g.stream().into_iter().collect()),
            }
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            let arity = split_top_level(g.stream().into_iter().collect())
                .into_iter()
                .filter(|chunk| !chunk.is_empty())
                .count();
            Shape::TupleStruct { name, arity }
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            let variants = split_top_level(g.stream().into_iter().collect())
                .into_iter()
                .filter(|chunk| !chunk.is_empty())
                .map(|chunk| {
                    let at = skip_attributes(&chunk, 0);
                    let vname =
                        ident_of(&chunk[at]).expect("serde_derive: expected a variant name");
                    match chunk.get(at + 1) {
                        None => (vname, 0),
                        Some(TokenTree::Group(p)) if p.delimiter() == Delimiter::Parenthesis => {
                            let arity = split_top_level(p.stream().into_iter().collect())
                                .into_iter()
                                .filter(|c| !c.is_empty())
                                .count();
                            (vname, arity)
                        }
                        Some(other) => panic!(
                            "serde_derive: unsupported variant shape at {name}::{vname} ({other})"
                        ),
                    }
                })
                .collect();
            Shape::Enum { name, variants }
        }
        _ => panic!("serde_derive: unsupported item shape for {name}"),
    }
}

/// Derives `serde::Serialize` for the supported shapes.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let body = match parse_shape(input) {
        Shape::NamedStruct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::serialize(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Map(::std::vec![{}])\n\
                     }}\n\
                 }}",
                entries.join(", ")
            )
        }
        Shape::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..arity)
                .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Seq(::std::vec![{}])\n\
                     }}\n\
                 }}",
                items.join(", ")
            )
        }
        Shape::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(vname, arity)| {
                    if *arity == 0 {
                        format!(
                            "{name}::{vname} => \
                             ::serde::Value::Str(::std::string::String::from(\"{vname}\")),"
                        )
                    } else {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::serialize({b})"))
                            .collect();
                        format!(
                            "{name}::{vname}({}) => ::serde::Value::Map(::std::vec![\
                             (::std::string::String::from(\"t\"), \
                              ::serde::Value::Str(::std::string::String::from(\"{vname}\"))), \
                             (::std::string::String::from(\"c\"), \
                              ::serde::Value::Seq(::std::vec![{}]))]),",
                            binds.join(", "),
                            items.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{\n\
                         match self {{\n{}\n}}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    };
    body.parse().expect("serde_derive: generated invalid Rust")
}

/// Derives `serde::Deserialize` for the supported shapes.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let body = match parse_shape(input) {
        Shape::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::__field(v, \"{name}\", \"{f}\")?,"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::std::string::String> {{\n\
                         match v {{\n\
                             ::serde::Value::Map(_) => ::std::result::Result::Ok({name} {{\n\
                                 {}\n\
                             }}),\n\
                             other => ::std::result::Result::Err(\
                                 ::std::format!(\"expected map for {name}, got {{other:?}}\")),\n\
                         }}\n\
                     }}\n\
                 }}",
                inits.join("\n")
            )
        }
        Shape::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..arity)
                .map(|i| format!("::serde::__element(v, \"{name}\", {i})?"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::std::string::String> {{\n\
                         ::std::result::Result::Ok({name}({}))\n\
                     }}\n\
                 }}",
                items.join(", ")
            )
        }
        Shape::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, arity)| *arity == 0)
                .map(|(vname, _)| {
                    format!("\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),")
                })
                .collect();
            let has_payloads = variants.iter().any(|(_, arity)| *arity > 0);
            let payload_arm = if has_payloads {
                let tag_arms: Vec<String> = variants
                    .iter()
                    .filter(|(_, arity)| *arity > 0)
                    .map(|(vname, arity)| {
                        let items: Vec<String> = (0..*arity)
                            .map(|i| {
                                format!("::serde::__element(payload, \"{name}::{vname}\", {i})?")
                            })
                            .collect();
                        format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}({})),",
                            items.join(", ")
                        )
                    })
                    .collect();
                format!
                    ("::serde::Value::Map(_) => {{\n\
                         let tag: ::std::string::String = ::serde::__field(v, \"{name}\", \"t\")?;\n\
                         let payload = v.get(\"c\").ok_or_else(|| \
                             ::std::format!(\"{name}: missing payload field 'c'\"))?;\n\
                         match tag.as_str() {{\n\
                             {}\n\
                             other => ::std::result::Result::Err(\
                                 ::std::format!(\"unknown {name} variant '{{other}}'\")),\n\
                         }}\n\
                     }}",
                    tag_arms.join("\n")
                )
            } else {
                String::new()
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::std::string::String> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {}\n\
                                 other => ::std::result::Result::Err(\
                                     ::std::format!(\"unknown {name} variant '{{other}}'\")),\n\
                             }},\n\
                             {}\n\
                             other => ::std::result::Result::Err(\
                                 ::std::format!(\"expected {name} value, got {{other:?}}\")),\n\
                         }}\n\
                     }}\n\
                 }}",
                unit_arms.join("\n"),
                payload_arm
            )
        }
    };
    body.parse().expect("serde_derive: generated invalid Rust")
}
