//! Offline, API-compatible subset of `serde_json`: JSON text to/from the
//! vendored serde's [`serde::Value`] interchange model.
//!
//! Numbers are written with Rust's shortest-roundtrip float formatting, so
//! `f64` (and widened `f32`) values survive a serialise/parse cycle
//! bit-exactly. Non-finite floats serialise as `null`, matching the real
//! serde_json's behaviour.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use serde::{Deserialize, Serialize, Value};

/// Error produced when parsing or rebuilding a value fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

/// Serialises `value` to a compact JSON string.
///
/// # Errors
/// Never fails for the vendored `Value` model; the `Result` exists for
/// call-compatibility with the real serde_json.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out);
    Ok(out)
}

/// Parses a JSON string into any [`Deserialize`] type.
///
/// # Errors
/// Reports malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    T::deserialize(&value).map_err(Error::new)
}

fn write_value(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(x) => out.push_str(&x.to_string()),
        Value::UInt(x) => out.push_str(&x.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // `{:?}` is the shortest representation that round-trips.
                out.push_str(&format!("{x:?}"))
            } else {
                out.push_str("null")
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::new(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or ']' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or '}}' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            // Surrogate pairs are not needed by this
                            // workspace's data; reject them loudly.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error::new("unsupported \\u escape"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a valid &str).
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = text.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(x) = text.parse::<i64>() {
                return Ok(Value::Int(x));
            }
            if let Ok(x) = text.parse::<u64>() {
                return Ok(Value::UInt(x));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(to_string(&-42i32).unwrap(), "-42");
        assert_eq!(from_str::<i32>(" -42 ").unwrap(), -42);
        assert_eq!(from_str::<f64>("1.5e3").unwrap(), 1500.0);
        assert_eq!(
            from_str::<String>("\"a\\nb\\u0041\"").unwrap(),
            "a\nbA".to_string()
        );
    }

    #[test]
    fn float_roundtrip_is_bit_exact() {
        for x in [0.1f64, 1e-308, -2.5e17, std::f64::consts::PI] {
            let json = to_string(&x).unwrap();
            assert_eq!(from_str::<f64>(&json).unwrap(), x);
        }
        for x in [0.1f32, f32::MIN_POSITIVE, -3.402_823_5e38f32] {
            let json = to_string(&x).unwrap();
            assert_eq!(from_str::<f32>(&json).unwrap(), x);
        }
    }

    #[test]
    fn nested_containers_roundtrip() {
        let v: Vec<Vec<f32>> = vec![vec![0.25, -1.5], vec![], vec![7.0]];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[0.25,-1.5],[],[7.0]]");
        assert_eq!(from_str::<Vec<Vec<f32>>>(&json).unwrap(), v);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "quote\" slash\\ newline\n tab\t unicode é".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(from_str::<bool>("tru").is_err());
        assert!(from_str::<Vec<f64>>("[1,").is_err());
        assert!(from_str::<f64>("not json").is_err());
        assert!(from_str::<f64>("1.0 trailing").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }
}
