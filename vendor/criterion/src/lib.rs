//! Offline, API-compatible subset of `criterion`.
//!
//! Implements the entry points the VVD workspace's micro-benchmarks use:
//! [`Criterion`] with the builder knobs (`sample_size`, `measurement_time`,
//! `warm_up_time`), [`Bencher::iter`], [`criterion_group!`] and
//! [`criterion_main!`]. Statistics are deliberately simple — per-sample
//! mean/min/max over wall-clock batches — but honest: timings come from
//! `std::time::Instant` around the measured closure only.
//!
//! `--test` on the command line (as passed by `cargo bench -- --test`)
//! switches to smoke mode: every benchmark body runs exactly once and no
//! timing is reported, mirroring the real criterion's behaviour.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::time::{Duration, Instant};

/// Prevents the optimiser from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark driver: collects configuration and runs named benchmarks.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the timing budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            test_mode: self.test_mode,
            calibrating: false,
            samples: Vec::new(),
            iters_per_sample: 1,
            last_iter_cost: Duration::from_micros(1),
        };

        if self.test_mode {
            body(&mut bencher);
            println!("test {name} ... ok");
            return self;
        }

        // Warm-up: run the body repeatedly until the budget is spent, and
        // let the Bencher calibrate its per-sample iteration count.
        let warm_up_end = Instant::now() + self.warm_up_time;
        bencher.calibrating = true;
        while Instant::now() < warm_up_end {
            body(&mut bencher);
        }
        bencher.calibrating = false;

        // Measurement: spread the budget over `sample_size` samples.
        let per_sample = self.measurement_time.div_f64(self.sample_size as f64);
        bencher.iters_per_sample = bencher.iters_for(per_sample);
        bencher.samples.clear();
        for _ in 0..self.sample_size {
            body(&mut bencher);
        }

        let per_iter: Vec<f64> = bencher
            .samples
            .iter()
            .map(|&(total, iters)| total.as_secs_f64() / iters as f64)
            .collect();
        let mean = per_iter.iter().sum::<f64>() / per_iter.len().max(1) as f64;
        let min = per_iter.iter().copied().fold(f64::INFINITY, f64::min);
        let max = per_iter.iter().copied().fold(0.0, f64::max);
        println!(
            "{name:<44} time: [{} {} {}]",
            format_time(min),
            format_time(mean),
            format_time(max)
        );
        self
    }

    /// Applies command-line arguments (only `--test` is recognised).
    pub fn configure_from_args(&mut self) -> &mut Self {
        self.test_mode = std::env::args().any(|a| a == "--test");
        self
    }
}

/// Per-benchmark measurement handle passed to the bench body.
#[derive(Debug)]
pub struct Bencher {
    test_mode: bool,
    calibrating: bool,
    samples: Vec<(Duration, u64)>,
    iters_per_sample: u64,
    last_iter_cost: Duration,
}

// Manual Default-ish construction happens in bench_function; the extra
// fields keep calibration state out of the public API.
impl Bencher {
    /// Times `routine`, running it enough times for a stable sample.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        if self.test_mode {
            black_box(routine());
            return;
        }
        if self.calibrating {
            let start = Instant::now();
            black_box(routine());
            self.last_iter_cost = start.elapsed();
            return;
        }
        let iters = self.iters_per_sample.max(1);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.samples.push((start.elapsed(), iters));
    }

    /// Estimates how many iterations fit into `budget`, from the cost
    /// observed during warm-up.
    fn iters_for(&self, budget: Duration) -> u64 {
        let cost = self.last_iter_cost.max(Duration::from_nanos(1));
        (budget.as_secs_f64() / cost.as_secs_f64()).clamp(1.0, 1e9) as u64
    }
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Declares a group of benchmark functions, in either the plain or the
/// `name/config/targets` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            criterion.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_body_in_test_mode() {
        let mut criterion = Criterion {
            test_mode: true,
            ..Criterion::default()
        };
        let mut runs = 0;
        criterion.bench_function("smoke", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }

    #[test]
    fn measurement_collects_samples() {
        let mut criterion = Criterion::default()
            .sample_size(5)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20));
        criterion.test_mode = false;
        let mut runs = 0u64;
        criterion.bench_function("count", |b| b.iter(|| runs += 1));
        assert!(runs > 5, "expected warm-up plus 5 samples, got {runs}");
    }

    #[test]
    fn time_formatting_picks_sane_units() {
        assert!(format_time(2.0).ends_with(" s"));
        assert!(format_time(2e-3).ends_with(" ms"));
        assert!(format_time(2e-6).ends_with(" µs"));
        assert!(format_time(2e-9).ends_with(" ns"));
    }
}
