//! The [`Strategy`] trait and its combinators.

use rand::rngs::StdRng;
use rand::{Rng, SampleRange, SampleUniform};
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
///
/// Unlike the real proptest there is no value tree / shrinking: a strategy
/// is just a deterministic function of the RNG state.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone, Copy)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

impl<T: SampleUniform + Copy> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: SampleUniform + Copy> Strategy for RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($name:ident : $idx:tt),+)),+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
impl_strategy_tuple!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3)
);

/// Collection sizes accepted by `collection::vec` / `collection::hash_set`:
/// an exact `usize`, a half-open range or an inclusive range.
pub trait SizeBound {
    /// Draws a concrete size.
    fn pick(&self, rng: &mut StdRng) -> usize;
}

impl SizeBound for usize {
    fn pick(&self, _rng: &mut StdRng) -> usize {
        *self
    }
}

impl SizeBound for Range<usize> {
    fn pick(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.clone())
    }
}

impl SizeBound for RangeInclusive<usize> {
    fn pick(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.clone())
    }
}

impl<S: SampleRange<usize> + Clone> SizeBound for &S {
    fn pick(&self, rng: &mut StdRng) -> usize {
        rng.gen_range((*self).clone())
    }
}
