//! Offline, API-compatible subset of `proptest`.
//!
//! Covers what the VVD workspace's property tests use: the [`proptest!`]
//! macro, range/tuple/collection strategies,
//! [`Strategy::prop_map`](strategy::Strategy::prop_map),
//! `any::<T>()`, `prop::sample::Index`, `prop_assert*` / `prop_assume` and
//! [`ProptestConfig::with_cases`].
//!
//! Unlike the real proptest there is **no shrinking**: a failing case panics
//! with the failure message straight away. Case generation is seeded
//! deterministically from the test's name, so failures reproduce on rerun.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod collection;
pub mod strategy;

use rand::rngs::StdRng;
use rand::Rng;

/// Runner configuration, consumed by [`proptest!`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of successful (non-discarded) cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Outcome of one generated case (internal plumbing for the macros).
#[doc(hidden)]
#[derive(Debug)]
pub enum TestFlow {
    /// The body ran to completion.
    Pass,
    /// A `prop_assume!` rejected the inputs; the case does not count.
    Discard,
    /// A `prop_assert*!` failed with the given message.
    Fail(String),
}

/// Deterministic per-test seed (FNV-1a over the test name).
#[doc(hidden)]
pub fn seed_for(test_name: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

/// Strategy producing arbitrary values of `T` (the `any::<T>()` result).
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    marker: std::marker::PhantomData<T>,
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> strategy::Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

pub mod prop {
    //! Namespaced helpers mirroring `proptest::prop`.

    pub mod sample {
        //! Sampling helpers.
        use rand::rngs::StdRng;
        use rand::Rng;

        /// A relative index into a collection whose length is only known at
        /// use time: `index(len)` maps it uniformly into `0..len`.
        #[derive(Debug, Clone, Copy, PartialEq)]
        pub struct Index {
            unit: f64,
        }

        impl Index {
            /// Projects the index into `0..len`. Panics if `len == 0`.
            pub fn index(&self, len: usize) -> usize {
                assert!(len > 0, "Index::index on an empty collection");
                ((self.unit * len as f64) as usize).min(len - 1)
            }
        }

        impl crate::Arbitrary for Index {
            fn arbitrary(rng: &mut StdRng) -> Self {
                Index {
                    unit: rng.gen::<f64>(),
                }
            }
        }
    }
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude`.
    pub use crate::strategy::Strategy;
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// item becomes a `#[test]` running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { @config($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { @config($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal recursion for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (@config($config:expr)) => {};
    (@config($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[allow(clippy::redundant_closure_call)]
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng: ::rand::rngs::StdRng =
                ::rand::SeedableRng::seed_from_u64($crate::seed_for(stringify!($name)));
            let mut passed: u32 = 0;
            let mut discarded: u32 = 0;
            while passed < config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let flow = (move || -> $crate::TestFlow {
                    $body
                    $crate::TestFlow::Pass
                })();
                match flow {
                    $crate::TestFlow::Pass => passed += 1,
                    $crate::TestFlow::Discard => {
                        discarded += 1;
                        assert!(
                            discarded < config.cases.saturating_mul(16).max(256),
                            "proptest '{}': too many discarded cases ({} passed)",
                            stringify!($name),
                            passed,
                        );
                    }
                    $crate::TestFlow::Fail(message) => panic!(
                        "proptest '{}' failed on case {}: {}",
                        stringify!($name),
                        passed,
                        message,
                    ),
                }
            }
        }
        $crate::__proptest_items! { @config($config) $($rest)* }
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return $crate::TestFlow::Fail(format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return $crate::TestFlow::Fail(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if !(left == right) {
            return $crate::TestFlow::Fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            ));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if left == right {
            return $crate::TestFlow::Fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            ));
        }
    }};
}

/// Discards the current case unless the assumption holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return $crate::TestFlow::Discard;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in -5.0f64..5.0, n in 1usize..=8) {
            prop_assert!((-5.0..5.0).contains(&x), "x = {x}");
            prop_assert!((1..=8).contains(&n), "n = {n}");
        }

        #[test]
        fn vec_strategy_respects_length(
            items in crate::collection::vec(0u8..10, 3..6),
        ) {
            prop_assert!((3..6).contains(&items.len()));
            prop_assert!(items.iter().all(|&x| x < 10));
        }

        #[test]
        fn hash_set_strategy_is_deduplicated(
            set in crate::collection::hash_set(0usize..32, 0..=4),
        ) {
            prop_assert!(set.len() <= 4);
            prop_assert!(set.iter().all(|&x| x < 32));
        }

        #[test]
        fn prop_map_applies(double in (0u8..100).prop_map(|x| u16::from(x) * 2)) {
            prop_assert!(double % 2 == 0);
            prop_assert!(double < 200);
        }

        #[test]
        fn assume_discards(n in 0u8..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }

        #[test]
        fn index_projects_into_bounds(idx in any::<prop::sample::Index>()) {
            prop_assert!(idx.index(7) < 7);
            prop_assert!(idx.index(1) == 0);
        }
    }

    #[test]
    fn seeds_are_stable_and_distinct() {
        assert_eq!(super::seed_for("a"), super::seed_for("a"));
        assert_ne!(super::seed_for("a"), super::seed_for("b"));
    }
}
