//! Collection strategies (`vec`, `hash_set`).

use crate::strategy::{SizeBound, Strategy};
use rand::rngs::StdRng;
use std::collections::HashSet;
use std::hash::Hash;

/// Strategy producing `Vec`s of values drawn from `element`.
#[derive(Debug, Clone, Copy)]
pub struct VecStrategy<S, B> {
    element: S,
    size: B,
}

/// Generates vectors whose length is drawn from `size`.
pub fn vec<S: Strategy, B: SizeBound>(element: S, size: B) -> VecStrategy<S, B> {
    VecStrategy { element, size }
}

impl<S: Strategy, B: SizeBound> Strategy for VecStrategy<S, B> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy producing `HashSet`s of values drawn from `element`.
#[derive(Debug, Clone, Copy)]
pub struct HashSetStrategy<S, B> {
    element: S,
    size: B,
}

/// Generates hash sets whose cardinality is drawn from `size`.
///
/// If the element domain is too small to reach the drawn cardinality, the
/// generator gives up after a bounded number of attempts and returns the
/// (smaller) set accumulated so far.
pub fn hash_set<S, B>(element: S, size: B) -> HashSetStrategy<S, B>
where
    S: Strategy,
    S::Value: Eq + Hash,
    B: SizeBound,
{
    HashSetStrategy { element, size }
}

impl<S, B> Strategy for HashSetStrategy<S, B>
where
    S: Strategy,
    S::Value: Eq + Hash,
    B: SizeBound,
{
    type Value = HashSet<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> HashSet<S::Value> {
        let n = self.size.pick(rng);
        let mut set = HashSet::with_capacity(n);
        let mut attempts = 0usize;
        while set.len() < n && attempts < n.saturating_mul(64).max(64) {
            set.insert(self.element.generate(rng));
            attempts += 1;
        }
        set
    }
}
