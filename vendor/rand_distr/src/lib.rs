//! Offline, API-compatible subset of the `rand_distr` crate.
//!
//! Provides the [`Distribution`] trait plus the two distributions the VVD
//! workspace samples from: [`Normal`] (Box–Muller) and [`Uniform`].

#![warn(missing_docs)]
#![deny(unsafe_code)]

use rand::{Rng, RngCore};

/// Types that produce values of `T` when driven by a random source.
pub trait Distribution<T> {
    /// Draws one value from the distribution.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error returned by [`Normal::new`] for invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NormalError;

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "standard deviation must be finite and non-negative")
    }
}

impl std::error::Error for NormalError {}

/// The normal (Gaussian) distribution `N(mean, std_dev^2)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates `N(mean, std_dev^2)`.
    ///
    /// # Errors
    /// Fails if `std_dev` is negative or non-finite.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, NormalError> {
        if std_dev.is_finite() && std_dev >= 0.0 && mean.is_finite() {
            Ok(Normal { mean, std_dev })
        } else {
            Err(NormalError)
        }
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller transform; one variate per draw (the sine twin is
        // discarded to keep the sampler stateless).
        let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        self.mean + self.std_dev * z
    }
}

/// The continuous uniform distribution on `[low, high)` (or `[low, high]`
/// for [`Uniform::new_inclusive`]; the distinction is immaterial for
/// continuous draws).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    low: f64,
    high: f64,
}

impl Uniform {
    /// Uniform on `[low, high)`.
    pub fn new(low: f64, high: f64) -> Self {
        assert!(low < high, "Uniform::new called with low >= high");
        Uniform { low, high }
    }

    /// Uniform on `[low, high]`.
    pub fn new_inclusive(low: f64, high: f64) -> Self {
        assert!(low <= high, "Uniform::new_inclusive called with low > high");
        Uniform { low, high }
    }
}

impl Distribution<f64> for Uniform {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.low + (self.high - self.low) * rng.gen::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments_match() {
        let mut rng = StdRng::seed_from_u64(7);
        let dist = Normal::new(1.5, 2.0).unwrap();
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| dist.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 1.5).abs() < 0.02, "mean {mean}");
        assert!((var - 4.0).abs() < 0.08, "var {var}");
    }

    #[test]
    fn normal_rejects_bad_std() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(0.0, f64::NAN).is_err());
        assert!(Normal::new(0.0, 0.0).is_ok());
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(8);
        let dist = Uniform::new_inclusive(-0.25, 0.25);
        for _ in 0..10_000 {
            let x = dist.sample(&mut rng);
            assert!((-0.25..=0.25).contains(&x));
        }
    }
}
