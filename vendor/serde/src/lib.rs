//! Offline, API-compatible subset of `serde`.
//!
//! Instead of the real serde's visitor architecture, this crate uses a
//! self-describing [`Value`] tree as the single interchange representation:
//! [`Serialize`] renders a type into a `Value`, [`Deserialize`] rebuilds it
//! from one. The companion `serde_json` vendored crate converts `Value`
//! to/from JSON text, and the `serde_derive` vendored crate derives both
//! traits for named/tuple structs and unit/tuple-variant enums.
//!
//! The derive macros are re-exported here so `use serde::{Serialize,
//! Deserialize}` pulls in both the traits and the derives, exactly like the
//! real crate.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::collections::{BTreeMap, HashMap};

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialised value (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absence of a value (`Option::None`).
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer too large for `Int`.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered string-keyed map (field order is preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in a [`Value::Map`].
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Converts `self` into the interchange representation.
    fn serialize(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds a value, reporting a human-readable error on shape or type
    /// mismatches.
    ///
    /// # Errors
    /// Returns a message describing the first mismatch encountered.
    fn deserialize(v: &Value) -> Result<Self, String>;
}

// ---------------------------------------------------------------------------
// Serialize implementations for primitives and std containers.
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! impl_ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}
impl_ser_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let x = *self as u64;
                if x <= i64::MAX as u64 {
                    Value::Int(x as i64)
                } else {
                    Value::UInt(x)
                }
            }
        }
    )*};
}
impl_ser_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for &str {
    fn serialize(&self) -> Value {
        Value::Str((*self).to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.serialize(),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for &T {
    fn serialize(&self) -> Value {
        (*self).serialize()
    }
}

macro_rules! impl_ser_tuple {
    ($(($($name:ident : $idx:tt),+)),+) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Seq(vec![$(self.$idx.serialize()),+])
            }
        }
    )+};
}
impl_ser_tuple!((A: 0, B: 1), (A: 0, B: 1, C: 2), (A: 0, B: 1, C: 2, D: 3));

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize(&self) -> Value {
        // Deterministic output: sort the keys.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.serialize()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize()))
                .collect(),
        )
    }
}

// ---------------------------------------------------------------------------
// Deserialize implementations.
// ---------------------------------------------------------------------------

fn type_err<T>(expected: &str, got: &Value) -> Result<T, String> {
    Err(format!("expected {expected}, got {got:?}"))
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, String> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => type_err("bool", other),
        }
    }
}

macro_rules! impl_de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, String> {
                let wide: i128 = match v {
                    Value::Int(x) => i128::from(*x),
                    Value::UInt(x) => i128::from(*x),
                    Value::Float(x) if x.fract() == 0.0 => *x as i128,
                    other => return type_err("integer", other),
                };
                <$t>::try_from(wide)
                    .map_err(|_| format!("integer {wide} out of range for {}", stringify!($t)))
            }
        }
    )*};
}
impl_de_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, String> {
        match v {
            Value::Float(x) => Ok(*x),
            Value::Int(x) => Ok(*x as f64),
            Value::UInt(x) => Ok(*x as f64),
            other => type_err("number", other),
        }
    }
}

impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<Self, String> {
        f64::deserialize(v).map(|x| x as f32)
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, String> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => type_err("string", other),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, String> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, String> {
        match v {
            Value::Seq(items) => items.iter().map(T::deserialize).collect(),
            other => type_err("sequence", other),
        }
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize(v: &Value) -> Result<Self, String> {
        let items: Vec<T> = Vec::deserialize(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| format!("expected array of length {N}, got {len}"))
    }
}

macro_rules! impl_de_tuple {
    ($(($len:expr; $($name:ident : $idx:tt),+)),+) => {$(
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(v: &Value) -> Result<Self, String> {
                match v {
                    Value::Seq(items) if items.len() == $len => {
                        Ok(($($name::deserialize(&items[$idx])?,)+))
                    }
                    other => type_err(concat!("sequence of length ", $len), other),
                }
            }
        }
    )+};
}
impl_de_tuple!(
    (2; A: 0, B: 1),
    (3; A: 0, B: 1, C: 2),
    (4; A: 0, B: 1, C: 2, D: 3)
);

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize(v: &Value) -> Result<Self, String> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, val)| Ok((k.clone(), V::deserialize(val)?)))
                .collect(),
            other => type_err("map", other),
        }
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize(v: &Value) -> Result<Self, String> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, val)| Ok((k.clone(), V::deserialize(val)?)))
                .collect(),
            other => type_err("map", other),
        }
    }
}

// ---------------------------------------------------------------------------
// Helpers used by the generated derive code (doc-hidden, semver-exempt).
// ---------------------------------------------------------------------------

/// Extracts and deserialises field `key` of a struct map.
#[doc(hidden)]
pub fn __field<T: Deserialize>(v: &Value, ty: &str, key: &str) -> Result<T, String> {
    let field = v
        .get(key)
        .ok_or_else(|| format!("{ty}: missing field '{key}'"))?;
    T::deserialize(field).map_err(|e| format!("{ty}.{key}: {e}"))
}

/// Extracts and deserialises element `idx` of a tuple-struct / enum-payload
/// sequence.
#[doc(hidden)]
pub fn __element<T: Deserialize>(v: &Value, ty: &str, idx: usize) -> Result<T, String> {
    match v {
        Value::Seq(items) => {
            let item = items
                .get(idx)
                .ok_or_else(|| format!("{ty}: missing element {idx}"))?;
            T::deserialize(item).map_err(|e| format!("{ty}[{idx}]: {e}"))
        }
        other => type_err(&format!("{ty}: sequence"), other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        assert_eq!(bool::deserialize(&true.serialize()), Ok(true));
        assert_eq!(u8::deserialize(&255u8.serialize()), Ok(255));
        assert_eq!(i64::deserialize(&(-7i64).serialize()), Ok(-7));
        assert_eq!(f32::deserialize(&0.1f32.serialize()), Ok(0.1f32));
        assert_eq!(f64::deserialize(&1.25f64.serialize()), Ok(1.25));
        assert_eq!(String::deserialize(&"hi".serialize()), Ok("hi".to_string()));
    }

    #[test]
    fn f32_roundtrip_is_bit_exact() {
        for x in [0.1f32, -1e-8, 3.402_823_5e38, f32::MIN_POSITIVE] {
            assert_eq!(f32::deserialize(&x.serialize()), Ok(x));
        }
    }

    #[test]
    fn container_roundtrips() {
        let v = vec![vec![1.0f32, 2.0], vec![3.0]];
        assert_eq!(Vec::<Vec<f32>>::deserialize(&v.serialize()), Ok(v));
        let o: Option<u32> = None;
        assert_eq!(Option::<u32>::deserialize(&o.serialize()), Ok(None));
        let arr = [1.0f64, 2.0, 3.0, 4.0];
        assert_eq!(<[f64; 4]>::deserialize(&arr.serialize()), Ok(arr));
        let t = (1u8, -2i32);
        assert_eq!(<(u8, i32)>::deserialize(&t.serialize()), Ok(t));
    }

    #[test]
    fn out_of_range_integers_are_rejected() {
        assert!(u8::deserialize(&Value::Int(300)).is_err());
        assert!(usize::deserialize(&Value::Int(-1)).is_err());
    }

    #[test]
    fn shape_mismatches_are_reported() {
        assert!(bool::deserialize(&Value::Int(1)).is_err());
        assert!(Vec::<f64>::deserialize(&Value::Str("x".into())).is_err());
        assert!(<[f64; 2]>::deserialize(&vec![1.0].serialize()).is_err());
    }
}
