//! Offline, API-compatible subset of the `rand` crate (0.8 style).
//!
//! Provides exactly what the VVD workspace uses: a seedable, deterministic
//! [`rngs::StdRng`] (xoshiro256++ seeded through SplitMix64), the [`Rng`]
//! extension trait (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`] and
//! [`seq::SliceRandom`] (Fisher–Yates `shuffle`, `choose`).
//!
//! The bit-stream differs from the real `rand`'s `StdRng` (which is
//! ChaCha12); callers must only rely on determinism and statistical quality,
//! not on specific draws.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random 32/64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from the full `gen()` distribution:
/// floats in `[0, 1)`, integers over their whole domain, fair booleans.
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform on [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types that can be drawn uniformly from a half-open or inclusive range.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[low, high]`.
    fn sample_range_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                // Lemire's widening-multiply bounded draw (bias < 2^-64).
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (low as i128 + hi) as $t
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low <= high, "gen_range: empty inclusive range");
                let span = (high as i128 - low as i128) as u128 + 1;
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (low as i128 + hi) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "gen_range: empty range");
                let unit = <$t as StandardSample>::sample_standard(rng);
                low + (high - low) * unit
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low <= high, "gen_range: empty inclusive range");
                let unit = <$t as StandardSample>::sample_standard(rng);
                low + (high - low) * unit
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range_inclusive(*self.start(), *self.end(), rng)
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T` (uniform
    /// `[0, 1)` for floats, full domain for integers, fair coin for bools).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction of generators from integer seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not the real rand's ChaCha12 `StdRng` — same API, different stream.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as recommended by the
            // xoshiro authors; guarantees a non-zero state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related random operations.
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.gen::<u64>()).collect::<Vec<_>>(),
            (0..8).map(|_| b.gen::<u64>()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn unit_floats_are_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let x = rng.gen_range(-3..7);
            assert!((-3..7).contains(&x));
            let y = rng.gen_range(10usize..=12);
            assert!((10..=12).contains(&y));
            let z = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&z));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "astronomically unlikely");
    }

    #[test]
    fn inclusive_integer_range_hits_both_endpoints() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut seen = [false; 3];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..=2)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
